"""Content-addressed on-disk result store — the durable second tier
behind the in-memory :class:`~repro.serve.cache.ResultCache`.

One file per result, named by the request fingerprint (the same content
address the memory tier uses), in a flat ``<root>/<fp>.res`` layout.
The container format is::

    +-----------+----------------+------------------------+
    | b"RST1"   | CRC32 (u32 LE) | payload (npz bytes)    |
    +-----------+----------------+------------------------+

where the payload is a ``np.savez`` archive of the result's field and
receiver arrays plus a JSON metadata blob (the same container idiom as
the checkpoint format).  Writes are **atomic**: serialise to
``<root>/.<fp>.tmp``, flush + fsync, then ``os.replace`` — a crash
mid-write can only ever leave a stale tmp file, never a half-written
entry under its final name.  Reads are **corruption-detected**: a bad
magic or CRC removes the entry and reports a miss (counted separately
as ``corrupt``), so bit rot re-executes a job instead of serving a
wrong answer.

Eviction is LRU under a byte budget (``max_bytes``): entries are
tracked in access order (on open, deterministically seeded as sorted
fingerprints) and compacted after each put.  The entry just written is
never the eviction victim.

Fault injection: ``store_corrupt`` flips one payload byte *after* the
CRC was computed (silent media corruption — the read path must catch
it); ``disk_full`` makes :meth:`put` skip the write and return False
(the service keeps running memory-only).
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from collections import OrderedDict

import numpy as np

_MAGIC = b"RST1"
_CRC = struct.Struct("<I")


class ResultStore:
    """Durable LRU store of :class:`~repro.serve.job.JobResult` payloads
    keyed by request fingerprint."""

    def __init__(self, root, *, max_bytes: int | None = None,
                 faults=None, obs=None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = os.fspath(root)
        self.max_bytes = max_bytes
        self.faults = faults
        self.obs = obs
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        self.disk_full_skips = 0
        os.makedirs(self.root, exist_ok=True)
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".res"):
                self._entries[name[:-4]] = os.path.getsize(
                    os.path.join(self.root, name))

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.res")

    # -- write -------------------------------------------------------------------
    def put(self, fingerprint: str, result) -> bool:
        """Atomically persist one result; returns False when skipped
        (``disk_full`` injection or a real failed write)."""
        site = f"store:{fingerprint[:12]}"
        if self.faults is not None and self.faults.should_inject(
                "disk_full", site, step=len(self._entries)):
            self.disk_full_skips += 1
            return False
        payload = self._serialize(result)
        frame = bytearray(_MAGIC + _CRC.pack(zlib.crc32(payload)) + payload)
        if self.faults is not None and self.faults.should_inject(
                "store_corrupt", site, step=len(self._entries)):
            # silent media corruption: one payload byte flips after the
            # CRC was computed, so only the read path can catch it
            at = len(_MAGIC) + _CRC.size + len(payload) // 2
            frame[at] ^= 0xFF
        tmp = os.path.join(self.root, f".{fingerprint}.tmp")
        try:
            with open(tmp, "wb") as f:
                f.write(frame)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self._path(fingerprint))
        except OSError:                       # pragma: no cover - env-specific
            if os.path.exists(tmp):
                os.remove(tmp)
            self.disk_full_skips += 1
            return False
        self._entries[fingerprint] = len(frame)
        self._entries.move_to_end(fingerprint)
        self._compact(keep=fingerprint)
        return True

    def _compact(self, keep: str) -> None:
        if self.max_bytes is None:
            return
        while (sum(self._entries.values()) > self.max_bytes
               and len(self._entries) > 1):
            victim = next(fp for fp in self._entries if fp != keep)
            self._entries.pop(victim)
            try:
                os.remove(self._path(victim))
            except FileNotFoundError:        # pragma: no cover - already gone
                pass
            self.evictions += 1

    # -- read --------------------------------------------------------------------
    def get(self, fingerprint: str):
        """The stored :class:`JobResult` (timing zeroed, ``from_store``
        set) or None on miss *or* detected corruption (the corrupt entry
        is removed so the job re-executes)."""
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as f:
                frame = f.read()
        except FileNotFoundError:
            self.misses += 1
            self._metric("repro_store_miss_total",
                         "Durable result-store lookups that missed")
            return None
        head = len(_MAGIC) + _CRC.size
        ok = (len(frame) >= head and frame[:len(_MAGIC)] == _MAGIC
              and _CRC.unpack_from(frame, len(_MAGIC))[0]
              == zlib.crc32(frame[head:]))
        if ok:
            try:
                result = self._deserialize(frame[head:])
            except Exception:
                ok = False
        if not ok:
            self.corrupt += 1
            self._metric("repro_store_corrupt_total",
                         "Durable result-store entries dropped for a bad "
                         "magic, CRC, or payload")
            os.remove(path)
            self._entries.pop(fingerprint, None)
            return None
        self.hits += 1
        self._metric("repro_store_hit_total",
                     "Durable result-store lookups served from disk")
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
        return result

    def __contains__(self, fingerprint: str) -> bool:
        return os.path.exists(self._path(fingerprint))

    def __len__(self) -> int:
        return len(self._entries)

    # -- serialisation -----------------------------------------------------------
    @staticmethod
    def _serialize(result) -> bytes:
        names = sorted(result.receivers)
        meta = {"time_step": result.time_step, "scheme": result.scheme,
                "precision": result.precision,
                "devices": list(result.devices),
                "kernel_time_ms": result.kernel_time_ms,
                "halo_time_ms": result.halo_time_ms,
                "attempts": result.attempts, "receivers": names}
        arrays = {"field": result.field}
        for i, name in enumerate(names):
            arrays[f"rx{i}"] = np.asarray(result.receivers[name])
        buf = io.BytesIO()
        np.savez(buf, meta=np.frombuffer(json.dumps(meta).encode(),
                                         dtype=np.uint8), **arrays)
        return buf.getvalue()

    @staticmethod
    def _deserialize(payload: bytes):
        from .job import JobResult
        with np.load(io.BytesIO(payload)) as z:
            meta = json.loads(bytes(z["meta"]).decode())
            receivers = {name: z[f"rx{i}"].copy()
                         for i, name in enumerate(meta["receivers"])}
            return JobResult(
                field=z["field"].copy(), time_step=int(meta["time_step"]),
                scheme=meta["scheme"], precision=meta["precision"],
                devices=tuple(meta["devices"]),
                kernel_time_ms=float(meta["kernel_time_ms"]),
                halo_time_ms=float(meta["halo_time_ms"]),
                receivers=receivers, policy_log=(),
                attempts=int(meta["attempts"]), from_store=True)

    def _metric(self, name: str, help: str) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name, help).inc()

    def stats(self) -> dict:
        return {"entries": len(self._entries),
                "bytes": sum(self._entries.values()),
                "max_bytes": self.max_bytes, "hits": self.hits,
                "misses": self.misses, "corrupt": self.corrupt,
                "evictions": self.evictions,
                "disk_full_skips": self.disk_full_skips}

    def __repr__(self) -> str:
        return (f"ResultStore({self.root!r}, entries={len(self._entries)}, "
                f"hits={self.hits}, corrupt={self.corrupt})")
