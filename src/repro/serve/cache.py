"""The service's two cache tiers: compiled programs and finished results.

**Compile tier** — :class:`CompileCache` memoises the
:func:`repro.lift.codegen.host.compile_host` output per
(scheme, precision, branch count, device hardware model).  It reproduces
exactly the compile decision of
:meth:`repro.acoustics.sim.RoomSimulation._setup_virtual_gpu` (``fi`` →
the fused single-kernel host program; ``fi_mm``/``fd_mm`` → the
two-kernel program) and hands the compiled ``HostProgram`` to jobs
through ``SimConfig.host_program``, so a thousand jobs of the same shape
compile once.  The device component of the key strips the spec's
name/board — the shards of a ``"TitanBlack:2"`` pool are the same
hardware and share entries.  The cache also carries the process-wide
:func:`repro.gpu.autotune.autotune_memo`, so workgroup sweeps executed
by one job are reused by every later job on the same hardware model.

**Result tier** — :class:`ResultCache` is content-addressed over
:meth:`repro.serve.job.SubmitRequest.fingerprint` (everything that
determines the answer, nothing that only determines scheduling), bounded
with LRU eviction.  A hit re-times the stored payload at the current
modelled clock but returns the *same arrays* — bit-identity for free,
because the stepper is deterministic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace

from ..gpu.autotune import AutotuneMemo, autotune_memo
from ..gpu.device import DeviceSpec
from .job import JobResult, SubmitRequest


def request_fingerprint(request: SubmitRequest) -> str:
    """Content address of a request (see ``SubmitRequest.fingerprint``)."""
    return request.fingerprint()


class CompileCache:
    """Memo of compiled host programs, keyed by shape and hardware model."""

    def __init__(self, autotune: AutotuneMemo | None = None):
        self._programs: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        #: the workgroup-sweep memo shared with the virtual runtime
        self.autotune = autotune if autotune is not None else autotune_memo()

    @staticmethod
    def key(request: SubmitRequest, device: DeviceSpec) -> tuple:
        """(scheme, precision, effective branch count, hardware model).

        The branch count mirrors ``RoomSimulation``: the material table
        carries ``num_branches`` only for ``fd_mm`` (0 otherwise), and
        the two-kernel host program is built with ``num_branches or 3``
        — so ``fi_mm`` always compiles the 3-branch variant and ``fi``
        has no branch dimension at all.
        """
        if request.scheme == "fd_mm":
            branches = request.num_branches or 3
        elif request.scheme == "fi_mm":
            branches = 3
        else:
            branches = 0
        return (request.scheme, request.precision, branches,
                replace(device, name="", board=""))

    def program_for(self, request: SubmitRequest, device: DeviceSpec):
        """The compiled ``HostProgram`` for this request shape (cached)."""
        key = self.key(request, device)
        prog = self._programs.get(key)
        if prog is not None:
            self.hits += 1
            return prog
        self.misses += 1
        from ..lift.codegen.host import compile_host
        if request.scheme == "fi":
            from ..acoustics.lift_programs import fused_host
            hp = fused_host(request.precision)
        else:
            from ..acoustics.lift_programs import two_kernel_host
            hp = two_kernel_host(request.scheme, request.precision,
                                 key[2])
        prog = compile_host(hp.program, hp.name)
        self._programs[key] = prog
        return prog

    def __len__(self) -> int:
        return len(self._programs)

    def clear(self) -> None:
        self._programs.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses,
                "autotune_hits": self.autotune.hits,
                "autotune_misses": self.autotune.misses}


class ResultCache:
    """Bounded LRU of finished :class:`JobResult` payloads by fingerprint."""

    def __init__(self, capacity: int = 128):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JobResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, fingerprint: str) -> JobResult | None:
        r = self._entries.get(fingerprint)
        if r is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return r

    def put(self, fingerprint: str, result: JobResult) -> None:
        if self.capacity == 0:
            return
        self._entries[fingerprint] = result
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @staticmethod
    def rebase(result: JobResult, *, submit_ms: float,
               now_ms: float) -> JobResult:
        """A cache hit re-stamped at the current clock: zero device time
        consumed, same arrays (the payload is shared, not copied)."""
        return replace(result, submit_ms=submit_ms, start_ms=now_ms,
                       end_ms=now_ms, from_cache=True, attempts=0)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        return {"entries": len(self), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}
