"""repro.serve — an async simulation service over the virtual substrate.

The paper renders one simulation at a time; a production deployment
serves *many* — different rooms, schemes and precisions, with different
priorities and deadlines, sharing a pool of devices.  This package is
that serving layer, built entirely on the repo's modelled runtime so
every throughput and latency number is deterministic:

* :mod:`.job` — :class:`SubmitRequest` (what to simulate + how to
  schedule it), :class:`JobHandle` futures over the
  QUEUED/RUNNING/DONE/FAILED/EVICTED lifecycle, :class:`JobResult`
  payloads with modelled wait/latency accounting;
* :mod:`.queue` — the bounded priority queue and the typed admission
  errors (:class:`InvalidRequest`, :class:`QueueFull` backpressure);
* :mod:`.cache` — the two cache tiers: compiled host programs per
  (scheme, precision, branches, hardware model) and a content-addressed
  LRU of finished results;
* :mod:`.scheduler` — :class:`SimulationService` (priority scheduling,
  same-program batching, deadline admission, per-job retry escalation
  into the fault layer) over a :class:`DevicePool` with
  earliest-availability leasing;
* ``python -m repro.serve`` — the smoke scenario: N mixed jobs over a
  shard pool, optionally fault-injected, verified bit-identical to
  serial :meth:`repro.api.Session.simulate`.

Quick start::

    from repro.serve import SimulationService, SubmitRequest

    svc = SimulationService(devices="TitanBlack:2", observability=True)
    h = svc.submit(SubmitRequest(room=room, steps=50, scheme="fi_mm",
                                 priority=5))
    result = h.result()            # drives the scheduler to completion
    print(svc.stats()["jobs_per_sec"], result.latency_ms)

Results are bit-identical to :meth:`repro.api.Session.simulate` of the
same request regardless of pool shape, batching or cache hits — the
stepper is deterministic and placement only changes modelled *times*.
"""

from .cache import CompileCache, ResultCache, request_fingerprint
from .job import (JOB_STATES, JobError, JobHandle, JobResult, SubmitRequest)
from .queue import (AdmissionError, BoundedPriorityQueue, InvalidRequest,
                    QueueFull)
from .scheduler import DevicePool, DeviceSlot, SimulationService

__all__ = [
    "AdmissionError", "BoundedPriorityQueue", "CompileCache", "DevicePool",
    "DeviceSlot", "InvalidRequest", "JOB_STATES", "JobError", "JobHandle",
    "JobResult", "QueueFull", "ResultCache", "SimulationService",
    "SubmitRequest", "request_fingerprint",
]
