"""repro.serve — an async simulation service over the virtual substrate.

The paper renders one simulation at a time; a production deployment
serves *many* — different rooms, schemes and precisions, with different
priorities and deadlines, sharing a pool of devices.  This package is
that serving layer, built entirely on the repo's modelled runtime so
every throughput and latency number is deterministic:

* :mod:`.job` — :class:`SubmitRequest` (what to simulate + how to
  schedule it), :class:`JobHandle` futures over the
  QUEUED/RUNNING/DONE/FAILED/EVICTED lifecycle, :class:`JobResult`
  payloads with modelled wait/latency accounting;
* :mod:`.queue` — the bounded priority queue and the typed admission
  errors (:class:`InvalidRequest`, :class:`QueueFull` backpressure);
* :mod:`.cache` — the two cache tiers: compiled host programs per
  (scheme, precision, branches, hardware model) and a content-addressed
  LRU of finished results;
* :mod:`.scheduler` — :class:`SimulationService` (priority scheduling,
  same-program batching, deadline admission, per-job retry escalation
  into the fault layer) over a :class:`DevicePool` with
  earliest-availability leasing;
* :mod:`.journal` — the write-ahead job journal (CRC-framed, fsync'd,
  torn-tail repairing) plus the fingerprint-exact request codec;
* :mod:`.store` — the content-addressed on-disk result store (atomic
  writes, corruption-detected reads, LRU byte budget), the durable
  second tier behind :class:`ResultCache`;
* :mod:`.chaos` — the kill-and-recover soak harness behind
  ``python -m repro.serve chaos``;
* ``python -m repro.serve`` — the smoke scenario: N mixed jobs over a
  shard pool, optionally fault-injected, verified bit-identical to
  serial :meth:`repro.api.Session.simulate`.

Durability is opt-in: construct with ``durable_dir=...`` (and usually
``checkpoint_every=N``) and every lifecycle transition is journalled
before it happens, finished results are persisted, and
:meth:`SimulationService.recover` rebuilds a crashed service from the
directory without re-executing anything the store already holds.  See
``docs/durability.md``.

Observability: every job carries a fingerprint-derived trace id
(:func:`derive_trace_id`) that flows through spans, the journal, and
recovery — the Chrome export renders one lane per job, stitched across
crashes.  With ``observability=True`` the service also samples sliding-
window time series and burn-rate SLOs; a bounded flight recorder is
always on and dumped as a black box on divergence or crash.  See
``docs/observability.md`` and ``python -m repro.obs dashboard``.

Quick start::

    from repro.serve import SimulationService, SubmitRequest

    svc = SimulationService(devices="TitanBlack:2", observability=True)
    h = svc.submit(SubmitRequest(room=room, steps=50, scheme="fi_mm",
                                 priority=5))
    result = h.result()            # drives the scheduler to completion
    print(svc.stats()["jobs_per_sec"], result.latency_ms)

Results are bit-identical to :meth:`repro.api.Session.simulate` of the
same request regardless of pool shape, batching or cache hits — the
stepper is deterministic and placement only changes modelled *times*.
"""

from .cache import CompileCache, ResultCache, request_fingerprint
from .job import (JOB_STATES, JobError, JobHandle, JobResult, SubmitRequest,
                  derive_trace_id)
from .journal import (JOURNAL_EVENTS, DurabilityError, Journal,
                      JournalCorrupt, JournalRecord, JournalTornWarning,
                      WorkerCrash, decode_request, encode_request)
from .queue import (AdmissionError, BoundedPriorityQueue, InvalidRequest,
                    QueueFull)
from .scheduler import DevicePool, DeviceSlot, SimulationService
from .store import ResultStore

__all__ = [
    "AdmissionError", "BoundedPriorityQueue", "CompileCache", "DevicePool",
    "DeviceSlot", "DurabilityError", "InvalidRequest", "JOB_STATES",
    "JOURNAL_EVENTS", "JobError", "JobHandle", "JobResult", "Journal",
    "JournalCorrupt", "JournalRecord", "JournalTornWarning", "QueueFull",
    "ResultCache", "ResultStore", "SimulationService", "SubmitRequest",
    "WorkerCrash", "decode_request", "derive_trace_id", "encode_request",
    "request_fingerprint",
]
