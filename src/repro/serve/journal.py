"""Write-ahead job journal for the simulation service.

The journal is the service's durability spine: every lifecycle event of
every job — ``submit`` / ``start`` / ``complete`` / ``fail`` / ``evict``
/ ``cancel`` — is appended to an fsync'd, append-only segment *before*
the corresponding in-memory transition, so a crashed service can be
reconstructed by replay (:meth:`repro.serve.SimulationService.recover`).
Records are keyed by :meth:`SubmitRequest.fingerprint`, which makes
replay and resubmission idempotent: the fingerprint is the content
address of the answer, so a duplicate submit is a cache lookup, never a
second execution.

Record framing (little-endian, see ``docs/durability.md``)::

    +----------------+----------------+------------------------+
    | length (u32)   | CRC32 (u32)    | payload (JSON, utf-8)  |
    +----------------+----------------+------------------------+

The CRC covers the payload bytes.  On open the journal is scanned and
*repaired*: a torn trailing record (short header, short payload, or a
CRC/JSON mismatch at end-of-file — the signature of a crash mid-append)
is truncated away with a :class:`JournalTornWarning`; a CRC mismatch
with further bytes after the record is **not** a torn write but silent
corruption of history, and raises :class:`JournalCorrupt` — replaying
past it could resurrect wrong state, so it is a hard error.

Fault injection (``repro.gpu.faults``): ``journal_torn_write`` makes an
append write only a prefix of the frame and raise :class:`WorkerCrash`
(a torn write *is* a crash mid-append); ``disk_full`` raises
:class:`DurabilityError` before any byte is written.  Both are
strictly opt-in via the service's :class:`~repro.gpu.faults.FaultPlan`.

The module also carries the request codec: :func:`encode_request` /
:func:`decode_request` round-trip a :class:`SubmitRequest` through JSON
such that the decoded request has the **same fingerprint** — the
property recovery relies on.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import warnings
import zlib
from dataclasses import dataclass

#: journal events, in lifecycle order (``fail`` is the retry-exhausted
#: terminal; ``evict`` covers deadline misses, ``cancel`` client aborts)
JOURNAL_EVENTS = ("submit", "start", "complete", "fail", "evict", "cancel")

_HEADER = struct.Struct("<II")          # (payload length, payload CRC32)


class DurabilityError(Exception):
    """A durable write or read failed in a typed, surfaced way
    (disk full, unwritable segment).  Nothing was admitted."""


class JournalCorrupt(DurabilityError):
    """A CRC- or JSON-invalid record *followed by further records* —
    silent corruption of journal history, not a torn tail.  Replaying
    past it is unsafe, so recovery refuses rather than silently skips."""


class WorkerCrash(Exception):
    """The (simulated) death of the serving process.

    Raised by the ``worker_crash`` fault at a checkpoint boundary and by
    the ``journal_torn_write`` fault mid-append.  Everything in memory
    is lost; the durable directory is what recovery gets."""


class JournalTornWarning(UserWarning):
    """A torn trailing record was truncated away during journal repair."""


@dataclass(frozen=True)
class JournalRecord:
    """One replayed journal record.

    ``trace_id`` is the record's trace context (the ``trace`` key on the
    wire), ``None`` for records written before trace propagation
    existed — the decoder is version-tolerant in both directions:
    unknown keys land in ``payload``, missing keys default.
    """

    seq: int
    event: str
    fingerprint: str
    job_id: int
    payload: dict
    trace_id: str | None = None

    @classmethod
    def from_json(cls, obj: dict) -> "JournalRecord":
        extra = {k: v for k, v in obj.items()
                 if k not in ("seq", "event", "fp", "job", "trace")}
        trace = obj.get("trace")
        return cls(seq=int(obj["seq"]), event=str(obj["event"]),
                   fingerprint=str(obj["fp"]), job_id=int(obj["job"]),
                   payload=extra,
                   trace_id=str(trace) if trace is not None else None)


class Journal:
    """An fsync'd append-only write-ahead log of job lifecycle events.

    :meth:`open` scans the existing segment, repairs a torn tail, and
    returns the surviving records; :meth:`append` frames, writes,
    flushes and fsyncs one record.  ``bytes_appended`` /
    ``torn_truncated`` are plain counters mirrored into the metrics
    registry when an observability sink is attached.
    """

    def __init__(self, path, *, faults=None, obs=None):
        self.path = os.fspath(path)
        self.faults = faults
        self.obs = obs
        self.bytes_appended = 0
        self.torn_truncated = 0          # records dropped by repair
        self._seq = 0
        self._file = None

    # -- open / repair -----------------------------------------------------------
    def open(self) -> list[JournalRecord]:
        """Scan, repair, and open for append; returns the replayable
        records.  Raises :class:`JournalCorrupt` on mid-file corruption."""
        records: list[JournalRecord] = []
        if os.path.exists(self.path):
            records, good, torn = self._scan()
            if torn is not None:
                self.torn_truncated += 1
                warnings.warn(
                    f"journal {self.path}: truncating torn trailing record "
                    f"at byte {good} ({torn}); {len(records)} good record(s) "
                    f"survive", JournalTornWarning, stacklevel=2)
                with open(self.path, "r+b") as f:
                    f.truncate(good)
        self._seq = (max(r.seq for r in records) + 1) if records else 0
        self._file = open(self.path, "ab")
        return records

    def _scan(self) -> tuple[list[JournalRecord], int, str | None]:
        """(records, good-byte offset, torn-tail reason or None)."""
        with open(self.path, "rb") as f:
            data = f.read()
        records: list[JournalRecord] = []
        off, n = 0, len(data)
        while off < n:
            if n - off < _HEADER.size:
                return records, off, f"{n - off}-byte partial header"
            length, crc = _HEADER.unpack_from(data, off)
            start = off + _HEADER.size
            end = start + length
            if end > n:
                return records, off, (f"payload truncated to "
                                      f"{n - start}/{length} bytes")
            payload = data[start:end]
            bad = None
            if zlib.crc32(payload) != crc:
                bad = "CRC mismatch"
            else:
                try:
                    obj = json.loads(payload.decode())
                except (UnicodeDecodeError, ValueError):
                    bad = "unparseable payload"
            if bad is not None:
                if end == n:                 # last record: a torn write
                    return records, off, bad
                raise JournalCorrupt(
                    f"journal {self.path}: {bad} in record {len(records)} "
                    f"at byte {off}, with {n - end} byte(s) of further "
                    f"history after it — this is mid-file corruption, not "
                    f"a torn tail; refusing to replay past it")
            records.append(JournalRecord.from_json(obj))
            off = end
        return records, off, None

    # -- append ------------------------------------------------------------------
    def append(self, event: str, *, fingerprint: str, job_id: int,
               trace_id: str | None = None, **payload) -> JournalRecord:
        """Frame, append, flush, and fsync one record (write-ahead:
        call this *before* the in-memory transition it describes).
        ``trace_id`` rides along as the ``trace`` wire key when given."""
        if event not in JOURNAL_EVENTS:
            raise ValueError(f"unknown journal event {event!r}; "
                             f"one of {JOURNAL_EVENTS}")
        if self._file is None:
            raise DurabilityError(f"journal {self.path} is not open")
        rec = JournalRecord(seq=self._seq, event=event,
                            fingerprint=fingerprint, job_id=job_id,
                            payload=dict(payload), trace_id=trace_id)
        body = {"seq": rec.seq, "event": event, "fp": fingerprint,
                "job": job_id, **payload}
        if trace_id is not None:
            body["trace"] = trace_id
        data = json.dumps(body, sort_keys=True,
                          separators=(",", ":")).encode()
        frame = _HEADER.pack(len(data), zlib.crc32(data)) + data
        site = f"journal:{event}"
        if self.faults is not None and self.faults.should_inject(
                "disk_full", site, step=rec.seq):
            raise DurabilityError(
                f"injected disk_full appending {event!r} record for job "
                f"{fingerprint[:12]} — nothing was written")
        try:
            if self.faults is not None and self.faults.should_inject(
                    "journal_torn_write", site, step=rec.seq):
                cut = max(1, len(frame) // 2)
                self._file.write(frame[:cut])
                self._file.flush()
                os.fsync(self._file.fileno())
                raise WorkerCrash(
                    f"injected torn write: process died after "
                    f"{cut}/{len(frame)} bytes of the {event!r} record for "
                    f"job {fingerprint[:12]}")
            self._file.write(frame)
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as io_err:             # pragma: no cover - env-specific
            raise DurabilityError(
                f"journal append to {self.path} failed: {io_err}") from io_err
        self._seq += 1
        self.bytes_appended += len(frame)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_journal_bytes_total",
                "Bytes appended to the write-ahead job journal").inc(
                    len(frame))
        return rec

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __repr__(self) -> str:
        return (f"Journal({self.path!r}, seq={self._seq}, "
                f"appended={self.bytes_appended}B)")


# -- request codec ---------------------------------------------------------------
def _registries():
    from ..acoustics.geometry import (BoxRoom, CylinderRoom, DomeRoom,
                                      LShapedRoom, SphereRoom)
    from ..acoustics.materials import Branch, FDMaterial, FIMaterial
    shapes = {c.__name__: c for c in (BoxRoom, DomeRoom, SphereRoom,
                                      CylinderRoom, LShapedRoom)}
    return shapes, {"FIMaterial": FIMaterial, "FDMaterial": FDMaterial}, Branch


def _enc_pos(pos):
    if pos is None or isinstance(pos, str):
        return pos
    return [int(v) for v in pos]


def _dec_pos(pos):
    if pos is None or isinstance(pos, str):
        return pos
    return tuple(int(v) for v in pos)


def encode_request(request) -> dict:
    """A :class:`SubmitRequest` as a JSON-serialisable dict whose
    :func:`decode_request` round-trip has the **same fingerprint**.

    Raises ``ValueError`` for shapes or materials outside the repo's
    registries — such a request cannot be journalled (and therefore
    cannot be submitted to a durable service).
    """
    shapes, materials, _ = _registries()
    shape = request.room.shape
    cls = type(shape).__name__
    if cls not in shapes:
        raise ValueError(
            f"room shape {cls} is not journal-serialisable; known shapes: "
            f"{sorted(shapes)}")
    mats = None
    if request.materials is not None:
        mats = []
        for m in request.materials:
            mcls = type(m).__name__
            if mcls not in materials:
                raise ValueError(
                    f"material {mcls} is not journal-serialisable; known: "
                    f"{sorted(materials)}")
            mats.append({"cls": mcls, "args": dataclasses.asdict(m)})
    g = request.room.grid
    return {
        "grid": {"nx": g.nx, "ny": g.ny, "nz": g.nz, "spacing": g.spacing,
                 "courant": g.courant, "c": g.c},
        "shape": {"cls": cls, "args": dataclasses.asdict(shape)},
        "scheme": request.scheme, "precision": request.precision,
        "steps": request.steps, "priority": request.priority,
        "deadline_ms": request.deadline_ms,
        "impulse": _enc_pos(request.impulse),
        "receivers": [[name, _enc_pos(pos)]
                      for name, pos in request.receiver_items()],
        "materials": mats,
        "num_branches": request.num_branches, "shards": request.shards,
        "backend": request.backend,
    }


def decode_request(obj: dict):
    """Rebuild the :class:`SubmitRequest` a journal ``submit`` record
    describes (inverse of :func:`encode_request`, fingerprint-exact)."""
    from ..acoustics.geometry import Room
    from ..acoustics.grid import Grid3D
    from .job import SubmitRequest
    shapes, materials, Branch = _registries()
    shape = shapes[obj["shape"]["cls"]](**obj["shape"]["args"])
    mats = None
    if obj.get("materials") is not None:
        mats = []
        for m in obj["materials"]:
            args = dict(m["args"])
            if "branches" in args:
                args["branches"] = tuple(Branch(**b)
                                         for b in args["branches"])
            mats.append(materials[m["cls"]](**args))
        mats = tuple(mats)
    receivers = tuple((name, _dec_pos(pos))
                      for name, pos in obj.get("receivers") or ())
    return SubmitRequest(
        room=Room(Grid3D(**obj["grid"]), shape),
        steps=int(obj["steps"]), scheme=obj["scheme"],
        precision=obj["precision"], priority=int(obj["priority"]),
        deadline_ms=obj.get("deadline_ms"),
        impulse=_dec_pos(obj.get("impulse")),
        receivers=receivers or None, materials=mats,
        num_branches=int(obj["num_branches"]), shards=int(obj["shards"]),
        backend=obj.get("backend", "virtual_gpu"))
