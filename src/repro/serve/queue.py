"""Bounded priority queue with admission control for the service.

Ordering is (priority desc, submission order asc) via a ``heapq`` over
``(-priority, seq)`` keys.  The heap uses *lazy deletion*: a handle that
left the QUEUED state (started, cancelled, evicted) stays in the heap as
a stale entry and is skipped when popped — the standard trick for heaps
that do not support random removal.  Capacity is therefore counted over
*live* (still-QUEUED) entries, so backpressure reflects real load, not
heap garbage.
"""

from __future__ import annotations

import heapq

from .job import JobHandle


class AdmissionError(Exception):
    """A submission the service refused to accept."""


class InvalidRequest(AdmissionError):
    """The request failed validation (bad scheme/precision/steps/...)."""


class QueueFull(AdmissionError):
    """Backpressure: the bounded queue is at capacity.

    Clients should drain (``handle.result()`` on an outstanding job) or
    shed load; the service never silently drops an accepted job.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        super().__init__(
            f"service queue is full ({capacity} jobs queued); drain "
            f"outstanding handles or raise max_queue")


class BoundedPriorityQueue:
    """Priority queue over :class:`JobHandle`\\ s with a live-entry bound."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[int, int, JobHandle]] = []
        self._seq = 0

    def __len__(self) -> int:
        """Number of live (still-QUEUED) entries."""
        return sum(1 for _, _, h in self._heap if h.state == "QUEUED")

    def push(self, handle: JobHandle) -> None:
        """Admit a handle, or raise :class:`QueueFull` at capacity."""
        if len(self) >= self.capacity:
            raise QueueFull(self.capacity)
        heapq.heappush(self._heap,
                       (-handle.request.priority, self._seq, handle))
        self._seq += 1

    def requeue(self, handle: JobHandle) -> None:
        """Re-admit a recovered handle, bypassing the capacity bound.

        Recovery must never drop a journalled job: it was admitted once,
        and jobs that were RUNNING at the crash were not counted against
        capacity, so strict re-admission could refuse legitimate state.
        """
        heapq.heappush(self._heap,
                       (-handle.request.priority, self._seq, handle))
        self._seq += 1

    def pop(self) -> JobHandle | None:
        """Highest-priority live handle (stale entries skipped), or None."""
        while self._heap:
            _, _, h = heapq.heappop(self._heap)
            if h.state == "QUEUED":
                return h
        return None

    def take_matching(self, predicate, limit: int) -> list[JobHandle]:
        """Up to ``limit`` further live handles satisfying ``predicate``,
        in priority order.  The handles are *not* removed here — the
        caller transitions them out of QUEUED (to RUNNING), which lazily
        deletes their heap entries."""
        if limit <= 0:
            return []
        out: list[JobHandle] = []
        for _, _, h in sorted(self._heap):
            if h.state == "QUEUED" and predicate(h):
                out.append(h)
                if len(out) == limit:
                    break
        return out
