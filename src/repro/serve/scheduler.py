"""The simulation service: device-pool placement, batching, execution.

:class:`SimulationService` is the serving loop over the repo's existing
substrate — jobs are admitted into a
:class:`~repro.serve.queue.BoundedPriorityQueue`, placed onto a
:class:`DevicePool` of virtual devices, executed through
:class:`~repro.acoustics.sim.RoomSimulation` (reusing the fault and
resilience layers per job), and answered through
:class:`~repro.serve.job.JobHandle` futures.

Time is **modelled**, like everywhere else in this reproduction: each
pool slot carries a ``busy_until_ms`` horizon, a job's start is the
later of its submission and its lease's availability, and its duration
is the simulation's modelled kernel + halo time.  The arithmetic lives
in the service itself (not in the tracer clock), so throughput and
latency percentiles from :meth:`SimulationService.stats` are
bit-reproducible whether observability is on or off.

Scheduling policy, in order:

1. **Priority** — the queue yields the highest-priority job (ties by
   submission order).
2. **Batching** — up to ``max_batch`` further queued jobs with the same
   compile key (same program) and the same shard count join the leader's
   lease and run back-to-back on it, amortising compile and autotune.
3. **Deadline admission** — a job whose modelled start would exceed
   ``submit + deadline_ms`` is EVICTED instead of run.
4. **Caching** — the result cache is consulted at submission and again
   at placement (a duplicate submitted while its twin was queued hits
   the second check); hits consume no device time.
5. **Retry escalation** — a failed attempt (typed OpenCL error or
   numerical divergence) is retried up to ``job_attempts`` times; from
   the second attempt the job is forced onto the resilient executor
   (:class:`repro.gpu.resilient.ResilientGPU`), escalating into the
   fault layer's retry/degrade/fallback ladder.
"""

from __future__ import annotations

from .. import obs as _obs
from ..acoustics.sim import RoomSimulation, SimConfig, SimulationDiverged
from ..gpu.device import DeviceSpec, resolve_device
from ..gpu.errors import ClError
from .cache import CompileCache, ResultCache
from .job import JobHandle, JobResult, SubmitRequest
from .queue import BoundedPriorityQueue, InvalidRequest, QueueFull

__all__ = ["DevicePool", "DeviceSlot", "SimulationService"]


class DeviceSlot:
    """One device of the pool and the modelled time it frees up."""

    __slots__ = ("spec", "busy_until_ms")

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self.busy_until_ms = 0.0

    def __repr__(self) -> str:
        return f"DeviceSlot({self.spec.name}, free@{self.busy_until_ms:.3f}ms)"


class DevicePool:
    """Earliest-availability leasing over a resolved device tuple."""

    def __init__(self, devices=None):
        self.slots = tuple(DeviceSlot(d) for d in resolve_device(devices))

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def devices(self) -> tuple[DeviceSpec, ...]:
        return tuple(s.spec for s in self.slots)

    def lease(self, shards: int,
              not_before: float) -> tuple[list[DeviceSlot], float]:
        """The ``shards`` earliest-free slots and the lease's start time
        (when all of them are free and the job is allowed to begin).
        Ties break on pool order, so placement is deterministic."""
        if shards > len(self.slots):
            raise InvalidRequest(
                f"job wants {shards} shard(s) but the pool has "
                f"{len(self.slots)} device(s)")
        ranked = sorted(range(len(self.slots)),
                        key=lambda i: (self.slots[i].busy_until_ms, i))
        chosen = [self.slots[i] for i in ranked[:shards]]
        start = max([not_before] + [s.busy_until_ms for s in chosen])
        return chosen, start


class SimulationService:
    """An async simulation service over a virtual device pool.

    Construction mirrors :class:`repro.api.Session` (``devices`` /
    ``resilient`` / ``faults`` / ``retry`` / ``observability``) plus the
    serving knobs: ``max_queue`` (admission bound — :class:`QueueFull`
    beyond it), ``max_batch`` (jobs per lease), ``job_attempts`` (retry
    budget per job) and ``result_cache_entries`` (LRU bound; 0 disables
    the result tier).

    The service is cooperative: :meth:`submit` only enqueues;
    :meth:`drain` (or any handle's ``result()``) runs the scheduling
    loop to completion on the caller's thread.
    """

    def __init__(self, *, devices=None, resilient: bool = False,
                 faults=None, retry=None,
                 observability: "bool | _obs.Observability" = False,
                 max_queue: int = 64, max_batch: int = 4,
                 job_attempts: int = 2, result_cache_entries: int = 128):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if job_attempts < 1:
            raise ValueError(f"job_attempts must be >= 1, got {job_attempts}")
        self.pool = DevicePool(devices)
        self.resilient = resilient
        self.faults = faults
        self.retry = retry
        self.max_batch = max_batch
        self.job_attempts = job_attempts
        self.queue = BoundedPriorityQueue(max_queue)
        self.compile_cache = CompileCache()
        self.result_cache = ResultCache(result_cache_entries)
        if observability is True:
            self.obs: _obs.Observability | None = _obs.Observability()
        elif observability is False:
            self.obs = None
        else:
            self.obs = observability
        self.now_ms = 0.0
        self.batches = 0
        self._next_id = 1
        self._handles: list[JobHandle] = []
        self._waits: list[float] = []
        self._latencies: list[float] = []

    # -- client surface ----------------------------------------------------------
    def submit(self, request: SubmitRequest) -> JobHandle:
        """Admit one job; returns its :class:`JobHandle` future.

        Raises :class:`InvalidRequest` on a malformed request and
        :class:`QueueFull` when the bounded queue is at capacity
        (backpressure — nothing was enqueued).
        """
        try:
            request.validate()
        except ValueError as bad:
            raise InvalidRequest(str(bad)) from bad
        if request.shards > len(self.pool):
            raise InvalidRequest(
                f"job wants {request.shards} shard(s) but the pool has "
                f"{len(self.pool)} device(s)")
        handle = JobHandle(self._next_id, request, self.now_ms, self)
        self._next_id += 1
        cached = self.result_cache.get(request.fingerprint())
        self._cache_metric("result", hit=cached is not None)
        if cached is not None:
            self._complete(handle, ResultCache.rebase(
                cached, submit_ms=handle.submit_ms, now_ms=self.now_ms))
            self._handles.append(handle)
            return handle
        self.queue.push(handle)           # may raise QueueFull (nothing kept)
        self._handles.append(handle)
        self._gauge_depth()
        return handle

    def drain(self, until: JobHandle | None = None) -> None:
        """Run the scheduling loop until the queue is empty (or ``until``
        reaches a terminal state)."""
        while True:
            if until is not None and until.done:
                return
            lead = self.queue.pop()
            if lead is None:
                self._gauge_depth()
                return
            self._place_batch(lead)
            self._gauge_depth()

    def stats(self) -> dict:
        """Deterministic service-level statistics (modelled clock)."""
        states = {s: 0 for s in ("QUEUED", "RUNNING", "DONE", "FAILED",
                                 "EVICTED")}
        for h in self._handles:
            states[h.state] += 1
        makespan_ms = self.now_ms
        done = states["DONE"]
        return {
            "pool": [d.name for d in self.pool.devices],
            "submitted": len(self._handles),
            "states": states,
            "makespan_ms": makespan_ms,
            "jobs_per_sec": (done / (makespan_ms / 1e3)
                             if makespan_ms > 0 else 0.0),
            "wait_ms": {"p50": _percentile(self._waits, 50),
                        "p95": _percentile(self._waits, 95)},
            "latency_ms": {"p50": _percentile(self._latencies, 50),
                           "p95": _percentile(self._latencies, 95)},
            "batches": self.batches,
            # compile-tier counters only: the autotune memo is
            # process-wide (see CompileCache.stats()), so folding its
            # counters in would make per-service stats depend on what
            # ran before in the process
            "cache": {"compile": {k: self.compile_cache.stats()[k]
                                  for k in ("entries", "hits", "misses")},
                      "result": self.result_cache.stats()},
        }

    # -- scheduling core ---------------------------------------------------------
    def _place_batch(self, lead: JobHandle) -> None:
        """Lease devices for ``lead``, co-schedule compatible queued jobs
        on the same lease, and execute them back-to-back."""
        key = CompileCache.key(lead.request, self.pool.devices[0])
        shards = lead.request.shards
        mates = self.queue.take_matching(
            lambda h: (h.request.shards == shards
                       and CompileCache.key(h.request,
                                            self.pool.devices[0]) == key),
            self.max_batch - 1)
        batch = [lead] + mates
        slots, t = self.pool.lease(shards, lead.submit_ms)
        executed = 0
        for h in batch:
            h.state = "RUNNING"
            req = h.request
            t = max(t, h.submit_ms)
            if (req.deadline_ms is not None
                    and t - h.submit_ms > req.deadline_ms):
                self._evict(h, f"deadline missed: modelled start "
                               f"{t - h.submit_ms:.3f}ms after submission "
                               f"exceeds deadline_ms={req.deadline_ms:g}")
                continue
            cached = self.result_cache.get(req.fingerprint())
            self._cache_metric("result", hit=cached is not None)
            if cached is not None:
                self._complete(h, ResultCache.rebase(
                    cached, submit_ms=h.submit_ms, now_ms=t))
                continue
            result, error = self._execute(h, slots, start_ms=t)
            if result is None:
                self._fail(h, error)
                continue
            t = result.end_ms
            executed += 1
            self.result_cache.put(req.fingerprint(), result)
            self._complete(h, result)
        for s in slots:
            s.busy_until_ms = max(s.busy_until_ms, t)
        self.now_ms = max(self.now_ms, t)
        if executed > 1:
            self.batches += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    "repro_serve_batches_total",
                    "Leases shared by two or more executed jobs").inc()

    def _execute(self, handle: JobHandle, slots, *,
                 start_ms: float) -> tuple[JobResult | None, str]:
        """Run one job on its lease, retrying with escalation.

        Attempt 1 uses the service's configured executor; later attempts
        force ``resilient=True`` so the fault layer's retry/degrade/
        fallback ladder engages.  Returns (result, "") or (None, error).
        """
        req = handle.request
        hits_before = self.compile_cache.hits
        program = self.compile_cache.program_for(req, slots[0].spec)
        self._cache_metric("compile", hit=self.compile_cache.hits > hits_before)
        devices = tuple(s.spec for s in slots)
        error = ""
        for attempt in range(1, self.job_attempts + 1):
            handle.attempts = attempt
            cfg = SimConfig(
                room=req.room, scheme=req.scheme, backend="virtual_gpu",
                precision=req.precision, materials=req.materials,
                num_branches=req.num_branches, faults=self.faults,
                resilient=self.resilient or attempt > 1, retry=self.retry,
                devices=devices, host_program=program)
            try:
                with self._observed():
                    sim = RoomSimulation(cfg)
                    if req.impulse is not None:
                        sim.add_impulse(req.impulse)
                    for name, pos in req.receiver_items():
                        sim.add_receiver(name, pos)
                    sim.run(req.steps)
            except (ClError, SimulationDiverged) as failed:
                error = f"attempt {attempt}: {failed}"
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "repro_serve_retries_total",
                        "Per-job attempts that ended in a typed failure",
                        ("error",)).inc(error=type(failed).__name__)
                continue
            duration = sim.modelled_gpu_time_ms + sim.modelled_halo_time_ms
            return JobResult(
                field=sim.curr[:sim._N].copy(), time_step=sim.time_step,
                scheme=req.scheme, precision=req.precision,
                devices=tuple(d.name for d in (sim.devices or devices)),
                kernel_time_ms=sim.modelled_gpu_time_ms,
                halo_time_ms=sim.modelled_halo_time_ms,
                receivers={k: sim.receiver_signal(k) for k in sim.receivers},
                policy_log=tuple(sim.policy_log),
                submit_ms=handle.submit_ms, start_ms=start_ms,
                end_ms=start_ms + duration, attempts=attempt), ""
        return None, error or "exhausted retry budget"

    # -- bookkeeping -------------------------------------------------------------
    def _complete(self, handle: JobHandle, result: JobResult) -> None:
        handle._finish(result)
        self._waits.append(result.wait_ms)
        self._latencies.append(result.latency_ms)
        if self.obs is not None:
            m = self.obs.metrics
            m.counter("repro_serve_jobs_total",
                      "Jobs by terminal state", ("state",)).inc(state="DONE")
            m.histogram("repro_serve_wait_ms",
                        "Modelled queue wait per completed job").observe(
                            result.wait_ms)
            m.histogram("repro_serve_latency_ms",
                        "Modelled submit-to-done latency per completed "
                        "job").observe(result.latency_ms)
            self.obs.tracer.event(
                "serve.job", "serve", 0.0, job_id=handle.job_id,
                scheme=result.scheme, state="DONE",
                from_cache=result.from_cache, attempts=result.attempts,
                wait_ms=round(result.wait_ms, 6),
                latency_ms=round(result.latency_ms, 6))

    def _fail(self, handle: JobHandle, error: str) -> None:
        handle._fail(error)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_serve_jobs_total", "Jobs by terminal state",
                ("state",)).inc(state="FAILED")
            self.obs.tracer.event("serve.job", "serve", 0.0,
                                  job_id=handle.job_id, state="FAILED",
                                  error=error[:200])

    def _evict(self, handle: JobHandle, reason: str) -> None:
        handle.error = reason
        handle.state = "EVICTED"
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_serve_jobs_total", "Jobs by terminal state",
                ("state",)).inc(state="EVICTED")
            self.obs.tracer.event("serve.job", "serve", 0.0,
                                  job_id=handle.job_id, state="EVICTED",
                                  reason=reason[:200])
        self._gauge_depth()

    def _observed(self):
        if self.obs is None:
            from contextlib import nullcontext
            return nullcontext()
        return _obs.observe(self.obs)

    def _gauge_depth(self) -> None:
        if self.obs is not None:
            self.obs.metrics.gauge(
                "repro_serve_queue_depth",
                "Live jobs waiting in the admission queue").set(
                    len(self.queue))

    def _cache_metric(self, tier: str, *, hit: bool) -> None:
        if self.obs is None:
            return
        name = ("repro_serve_cache_hits_total" if hit
                else "repro_serve_cache_misses_total")
        self.obs.metrics.counter(
            name, "Service cache lookups by tier and outcome",
            ("tier",)).inc(tier=tier)

    def __repr__(self) -> str:
        names = ",".join(d.name for d in self.pool.devices)
        return (f"SimulationService(pool=({names}), queued={len(self.queue)}, "
                f"submitted={len(self._handles)})")


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    xs = sorted(values)
    rank = max(1, int(-(-q * len(xs) // 100)))   # ceil(q/100 * n)
    return float(xs[min(rank, len(xs)) - 1])
