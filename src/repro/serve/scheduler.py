"""The simulation service: device-pool placement, batching, execution.

:class:`SimulationService` is the serving loop over the repo's existing
substrate — jobs are admitted into a
:class:`~repro.serve.queue.BoundedPriorityQueue`, placed onto a
:class:`DevicePool` of virtual devices, executed through
:class:`~repro.acoustics.sim.RoomSimulation` (reusing the fault and
resilience layers per job), and answered through
:class:`~repro.serve.job.JobHandle` futures.

Time is **modelled**, like everywhere else in this reproduction: each
pool slot carries a ``busy_until_ms`` horizon, a job's start is the
later of its submission and its lease's availability, and its duration
is the simulation's modelled kernel + halo time.  The arithmetic lives
in the service itself (not in the tracer clock), so throughput and
latency percentiles from :meth:`SimulationService.stats` are
bit-reproducible whether observability is on or off.

Scheduling policy, in order:

1. **Priority** — the queue yields the highest-priority job (ties by
   submission order).
2. **Batching** — up to ``max_batch`` further queued jobs with the same
   compile key (same program) and the same shard count join the leader's
   lease and run back-to-back on it, amortising compile and autotune.
3. **Deadline admission** — a job whose modelled start would exceed
   ``submit + deadline_ms`` is EVICTED instead of run.
4. **Caching** — the result cache is consulted at submission and again
   at placement (a duplicate submitted while its twin was queued hits
   the second check); hits consume no device time.
5. **Retry escalation** — a failed attempt (typed OpenCL error or
   numerical divergence) is retried up to ``job_attempts`` times; from
   the second attempt the job is forced onto the resilient executor
   (:class:`repro.gpu.resilient.ResilientGPU`), escalating into the
   fault layer's retry/degrade/fallback ladder.
6. **Durability** (opt-in via ``durable_dir``) — every lifecycle
   transition is write-ahead journalled (:mod:`.journal`), finished
   results are persisted to a content-addressed on-disk store
   (:mod:`.store`) consulted as a second cache tier, and mid-job
   checkpoints are written every ``checkpoint_every`` steps through the
   PR-1 checkpoint machinery.  :meth:`SimulationService.recover`
   rebuilds a crashed service from the directory: completed jobs are
   served from the store without re-execution, in-flight jobs are
   re-enqueued (resuming from their last durable checkpoint), and a
   torn journal tail is truncated with a warning.  See
   ``docs/durability.md``.
7. **Observability** — every job carries a trace id derived from its
   fingerprint (:func:`~repro.serve.job.derive_trace_id`) that flows
   submit → lease → execution spans → journal → completion; with
   ``observability=True`` the service additionally samples sliding-
   window time series (:mod:`repro.obs.timeseries`) and evaluates
   burn-rate SLOs (:mod:`repro.obs.slo`) at event boundaries.  A
   bounded flight recorder (:mod:`repro.obs.flight`) is **always on**
   and dumped to ``flight-recorder.json`` on divergence or crash.
   None of it perturbs the modelled numbers: :meth:`stats` is
   byte-identical with observability on or off.  See
   ``docs/observability.md``.
"""

from __future__ import annotations

import os
import threading

from .. import obs as _obs
from ..acoustics.sim import (Checkpoint, RoomSimulation, SimConfig,
                             SimulationDiverged)
from ..gpu.device import DeviceSpec, resolve_device
from ..gpu.errors import ClError
from .cache import CompileCache, ResultCache
from .job import JOB_STATES, JobHandle, JobResult, SubmitRequest
from .journal import (Journal, WorkerCrash, decode_request, encode_request)
from .queue import BoundedPriorityQueue, InvalidRequest, QueueFull
from .store import ResultStore

__all__ = ["DevicePool", "DeviceSlot", "SimulationService"]


class DeviceSlot:
    """One device of the pool and the modelled time it frees up."""

    __slots__ = ("spec", "busy_until_ms")

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self.busy_until_ms = 0.0

    def __repr__(self) -> str:
        return f"DeviceSlot({self.spec.name}, free@{self.busy_until_ms:.3f}ms)"


class DevicePool:
    """Earliest-availability leasing over a resolved device tuple."""

    def __init__(self, devices=None):
        self.slots = tuple(DeviceSlot(d) for d in resolve_device(devices))

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def devices(self) -> tuple[DeviceSpec, ...]:
        return tuple(s.spec for s in self.slots)

    def lease(self, shards: int,
              not_before: float) -> tuple[list[DeviceSlot], float]:
        """The ``shards`` earliest-free slots and the lease's start time
        (when all of them are free and the job is allowed to begin).
        Ties break on pool order, so placement is deterministic."""
        if shards > len(self.slots):
            raise InvalidRequest(
                f"job wants {shards} shard(s) but the pool has "
                f"{len(self.slots)} device(s)")
        ranked = sorted(range(len(self.slots)),
                        key=lambda i: (self.slots[i].busy_until_ms, i))
        chosen = [self.slots[i] for i in ranked[:shards]]
        start = max([not_before] + [s.busy_until_ms for s in chosen])
        return chosen, start


class SimulationService:
    """An async simulation service over a virtual device pool.

    Construction mirrors :class:`repro.api.Session` (``devices`` /
    ``resilient`` / ``faults`` / ``retry`` / ``observability``) plus the
    serving knobs: ``max_queue`` (admission bound — :class:`QueueFull`
    beyond it), ``max_batch`` (jobs per lease), ``job_attempts`` (retry
    budget per job) and ``result_cache_entries`` (LRU bound; 0 disables
    the result tier).  ``durable_dir`` turns on the durability layer
    (write-ahead journal + on-disk result store + mid-job checkpoints
    every ``checkpoint_every`` steps, ``store_max_bytes`` LRU budget);
    :meth:`recover` rebuilds a crashed durable service from that
    directory.

    The service is cooperative: :meth:`submit` only enqueues;
    :meth:`drain` (or any handle's ``result()``) runs the scheduling
    loop to completion on the caller's thread.
    """

    def __init__(self, *, devices=None, resilient: bool = False,
                 faults=None, retry=None,
                 observability: "bool | _obs.Observability" = False,
                 max_queue: int = 64, max_batch: int = 4,
                 job_attempts: int = 2, result_cache_entries: int = 128,
                 durable_dir=None, checkpoint_every: int = 0,
                 store_max_bytes: int | None = None,
                 window_ms: float = 1000.0, slos=None,
                 flight_capacity: int = 512):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if job_attempts < 1:
            raise ValueError(f"job_attempts must be >= 1, got {job_attempts}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}")
        self.pool = DevicePool(devices)
        self.resilient = resilient
        self.faults = faults
        self.retry = retry
        self.max_batch = max_batch
        self.job_attempts = job_attempts
        self.queue = BoundedPriorityQueue(max_queue)
        self.compile_cache = CompileCache()
        self.result_cache = ResultCache(result_cache_entries)
        if observability is True:
            self.obs: _obs.Observability | None = _obs.Observability()
        elif observability is False:
            self.obs = None
        else:
            self.obs = observability
        # the flight recorder is the one *always-on* instrument: a crash
        # report needs the ring to have been recording before the crash
        self.flight = _obs.FlightRecorder(flight_capacity)
        if self.obs is not None:
            self.timeseries: _obs.TimeSeriesStore | None = \
                _obs.TimeSeriesStore(width_ms=window_ms)
            self.slo: _obs.SLOTracker | None = _obs.SLOTracker(
                slos if slos is not None else _obs.default_slos(),
                self.timeseries)
        else:                             # obs off: no sampling, no SLOs
            self.timeseries = None
            self.slo = None
        #: accumulated modelled busy time per pool slot (always tracked —
        #: it is plain lease arithmetic, and the dashboard's utilisation
        #: panel must not depend on observability being on)
        self.slot_busy_ms = [0.0] * len(self.pool)
        self.now_ms = 0.0
        self.batches = 0
        self._next_id = 1
        self._handles: list[JobHandle] = []
        # incremental per-state counts + a lock make stats()/health()
        # O(1) in the job count and safe to poll from another thread
        # (the gateway's health endpoint) while the service mutates
        self._lock = threading.RLock()
        self._state_counts = {s: 0 for s in JOB_STATES}
        self._waits: list[float] = []
        self._latencies: list[float] = []
        # -- durability (opt-in) --
        self.checkpoint_every = checkpoint_every
        self.durable_dir = None
        self.journal: Journal | None = None
        self.store: ResultStore | None = None
        self.executions = 0
        self.executed_fingerprints: list[str] = []
        self.recovery: dict[str, list[str] | int] = {
            "from_store": [], "requeued": [], "resumed": [],
            "terminal": [], "deduped": 0}
        self._journal_records = []
        self._resume: dict[str, Checkpoint] = {}
        self._replaying = False
        if durable_dir is not None:
            self.durable_dir = os.fspath(durable_dir)
            os.makedirs(os.path.join(self.durable_dir, "checkpoints"),
                        exist_ok=True)
            self.journal = Journal(
                os.path.join(self.durable_dir, "journal.wal"),
                faults=self.faults, obs=self.obs)
            self._journal_records = self.journal.open()
            self.store = ResultStore(
                os.path.join(self.durable_dir, "store"),
                max_bytes=store_max_bytes, faults=self.faults, obs=self.obs)

    # -- client surface ----------------------------------------------------------
    def submit(self, request: SubmitRequest) -> JobHandle:
        """Admit one job; returns its :class:`JobHandle` future.

        Raises :class:`InvalidRequest` on a malformed request and
        :class:`QueueFull` when the bounded queue is at capacity
        (backpressure — nothing was enqueued).
        """
        try:
            request.validate()
        except ValueError as bad:
            raise InvalidRequest(str(bad)) from bad
        if request.shards > len(self.pool):
            raise InvalidRequest(
                f"job wants {request.shards} shard(s) but the pool has "
                f"{len(self.pool)} device(s)")
        encoded = None
        if self.journal is not None:
            try:
                encoded = encode_request(request)
            except ValueError as bad:
                raise InvalidRequest(
                    f"durable service cannot journal this request: "
                    f"{bad}") from bad
        fp = request.fingerprint()
        handle = JobHandle(self._next_id, request, self.now_ms, self)
        self._next_id += 1
        cached = self.result_cache.get(fp)
        self._cache_metric("result", hit=cached is not None)
        if cached is None and self.store is not None:
            stored = self.store.get(fp)
            if stored is not None:
                self.result_cache.put(fp, stored)
                cached = stored
        if cached is not None:
            self._journal("submit", handle, fp, request=encoded)
            self.flight.record("submit", self.now_ms, job=handle.job_id,
                               trace=handle.trace_id, scheme=request.scheme,
                               priority=request.priority)
            self._ts("submitted")
            self._register(handle)
            self._complete(handle, ResultCache.rebase(
                cached, submit_ms=handle.submit_ms, now_ms=self.now_ms))
            return handle
        if len(self.queue) >= self.queue.capacity:
            # backpressure *before* the journal write: a refused job
            # must leave no durable trace to be replayed
            raise QueueFull(self.queue.capacity)
        self._journal("submit", handle, fp, request=encoded)
        self.flight.record("submit", self.now_ms, job=handle.job_id,
                           trace=handle.trace_id, scheme=request.scheme,
                           priority=request.priority)
        self.queue.push(handle)           # may raise QueueFull (nothing kept)
        self._register(handle)
        self._ts("submitted")
        self._ts("queue_depth", len(self.queue))
        self._gauge_depth()
        return handle

    def drain(self, until: JobHandle | None = None) -> None:
        """Run the scheduling loop until the queue is empty (or ``until``
        reaches a terminal state)."""
        while True:
            if until is not None and until.done:
                return
            lead = self.queue.pop()
            if lead is None:
                self._gauge_depth()
                return
            self._place_batch(lead)
            self._gauge_depth()

    def stats(self) -> dict:
        """Deterministic service-level statistics (modelled clock)."""
        with self._lock:
            states = dict(self._state_counts)
        makespan_ms = self.now_ms
        done = states["DONE"]
        durability = None
        if self.durable_dir is not None:
            durability = {
                "dir": self.durable_dir,
                "journal_bytes": self.journal.bytes_appended,
                "journal_torn_truncated": self.journal.torn_truncated,
                "store": self.store.stats(),
                "executions": self.executions,
                "recovered": {k: (v if isinstance(v, int) else len(v))
                              for k, v in self.recovery.items()},
            }
        return {
            "pool": [d.name for d in self.pool.devices],
            "submitted": len(self._handles),
            "states": states,
            "makespan_ms": makespan_ms,
            "jobs_per_sec": (done / (makespan_ms / 1e3)
                             if makespan_ms > 0 else 0.0),
            "wait_ms": {"p50": _percentile(self._waits, 50),
                        "p95": _percentile(self._waits, 95)},
            "latency_ms": {"p50": _percentile(self._latencies, 50),
                           "p95": _percentile(self._latencies, 95)},
            "batches": self.batches,
            # compile-tier counters only: the autotune memo is
            # process-wide (see CompileCache.stats()), so folding its
            # counters in would make per-service stats depend on what
            # ran before in the process
            "cache": {"compile": {k: self.compile_cache.stats()[k]
                                  for k in ("entries", "hits", "misses")},
                      "result": self.result_cache.stats()},
            "durability": durability,
        }

    def health(self) -> dict:
        """Cheap, thread-safe liveness snapshot for high-frequency
        polling (the gateway's ``GET /healthz``).

        Unlike :meth:`stats` it computes no percentiles and walks no
        handle list: per-state counts are maintained incrementally, so
        the cost is O(pool size + heap size) regardless of how many
        jobs the service has ever seen.  Safe to call from a different
        thread than the one driving the scheduler.
        """
        with self._lock:
            states = dict(self._state_counts)
            busy = [s.busy_until_ms for s in self.pool.slots]
            now = self.now_ms
            out = {
                "queue_depth": len(self.queue),
                "queue_capacity": self.queue.capacity,
                "states": states,
                "submitted": sum(states.values()),
                "lease": {"slots": len(busy),
                          "occupied": sum(1 for b in busy if b > now),
                          "busy_until_ms": busy},
                "now_ms": now,
                "executions": self.executions,
                "recovered": {k: (v if isinstance(v, int) else len(v))
                              for k, v in self.recovery.items()},
                "durable": self.durable_dir is not None,
            }
            if self.journal is not None:
                out["journal_bytes"] = self.journal.bytes_appended
            if self.store is not None:
                out["store_entries"] = len(self.store._entries)
            return out

    # -- scheduling core ---------------------------------------------------------
    def _place_batch(self, lead: JobHandle) -> None:
        """Lease devices for ``lead``, co-schedule compatible queued jobs
        on the same lease, and execute them back-to-back."""
        key = CompileCache.key(lead.request, self.pool.devices[0])
        shards = lead.request.shards
        mates = self.queue.take_matching(
            lambda h: (h.request.shards == shards
                       and CompileCache.key(h.request,
                                            self.pool.devices[0]) == key),
            self.max_batch - 1)
        batch = [lead] + mates
        slots, t = self.pool.lease(shards, lead.submit_ms)
        lease_start = t
        self.flight.record(
            "lease", lease_start, job=lead.job_id, trace=lead.trace_id,
            batch=len(batch), shards=shards,
            devices=[s.spec.name for s in slots])
        self._ts("in_flight", len(batch), t=lease_start)
        executed = 0
        for h in batch:
            if h.state != "QUEUED":
                # cancelled/evicted between lease and execution — never
                # double-complete the handle or burn its device time
                continue
            self._transition(h, "RUNNING")
            req = h.request
            t = max(t, h.submit_ms)
            if (req.deadline_ms is not None
                    and t - h.submit_ms > req.deadline_ms):
                self._evict(h, f"deadline missed: modelled start "
                               f"{t - h.submit_ms:.3f}ms after submission "
                               f"exceeds deadline_ms={req.deadline_ms:g}")
                continue
            fp = req.fingerprint()
            cached = self.result_cache.get(fp)
            self._cache_metric("result", hit=cached is not None)
            if cached is None and self.store is not None:
                stored = self.store.get(fp)
                if stored is not None:
                    self.result_cache.put(fp, stored)
                    cached = stored
            if cached is not None:
                self._complete(h, ResultCache.rebase(
                    cached, submit_ms=h.submit_ms, now_ms=t))
                continue
            self._journal("start", h, fp)
            result, error = self._execute(h, slots, start_ms=t,
                                          resume=self._resume.pop(fp, None))
            if result is None:
                self._fail(h, error)
                continue
            t = result.end_ms
            executed += 1
            self.executions += 1
            self.executed_fingerprints.append(fp)
            if self.store is not None:
                # durable-before-visible: the store write precedes the
                # journal's complete record and the in-memory completion
                self.store.put(fp, result)
            self.result_cache.put(fp, result)
            self._complete(h, result)
            self._drop_checkpoint(fp)
        if t > lease_start:               # only real work occupies a lease
            chosen = {id(s) for s in slots}
            for i, s in enumerate(self.pool.slots):
                if id(s) not in chosen:
                    continue
                s.busy_until_ms = max(s.busy_until_ms, t)
                self.slot_busy_ms[i] += t - lease_start
                if self.timeseries is not None:
                    self.timeseries.add_busy(
                        f"util:{i}:{s.spec.name}", lease_start, t)
        self.now_ms = max(self.now_ms, t)
        if executed > 1:
            self.batches += 1
            if self.obs is not None:
                self.obs.metrics.counter(
                    "repro_serve_batches_total",
                    "Leases shared by two or more executed jobs").inc()

    def _execute(self, handle: JobHandle, slots, *, start_ms: float,
                 resume: Checkpoint | None = None
                 ) -> tuple[JobResult | None, str]:
        """Run one job on its lease, retrying with escalation.

        Attempt 1 uses the service's configured executor; later attempts
        force ``resilient=True`` so the fault layer's retry/degrade/
        fallback ladder engages.  Returns (result, "") or (None, error).

        ``resume`` is a recovered mid-job :class:`Checkpoint`: the
        simulation restores it and runs only the remaining steps —
        bit-identical to an uninterrupted run, because the checkpoint
        holds every mutated array and the stepper is deterministic.
        With ``checkpoint_every > 0`` the simulation's periodic-
        checkpoint hook persists progress atomically and models
        ``worker_crash`` faults at each boundary.
        """
        req = handle.request
        fp = req.fingerprint()
        program = None
        if req.backend == "virtual_gpu":
            # only the virtual_gpu backend consumes a compiled host
            # program; host-side backends step their kernels directly
            hits_before = self.compile_cache.hits
            program = self.compile_cache.program_for(req, slots[0].spec)
            self._cache_metric("compile",
                               hit=self.compile_cache.hits > hits_before)
        devices = tuple(s.spec for s in slots)
        error = ""
        every = self.checkpoint_every
        hook = self._checkpoint_hook(fp) if every > 0 else None
        for attempt in range(1, self.job_attempts + 1):
            handle.attempts = attempt
            cfg = SimConfig(
                room=req.room, scheme=req.scheme, backend=req.backend,
                precision=req.precision, materials=req.materials,
                num_branches=req.num_branches, faults=self.faults,
                resilient=self.resilient or attempt > 1, retry=self.retry,
                devices=devices, host_program=program,
                # shards=k jobs get the multi-process overlap executor;
                # it falls back to the serial in-process path on its own
                # whenever ineligible (faults, resilient retries, daemon
                # worker processes)
                parallel=len(devices) > 1,
                checkpoint_interval=every, on_checkpoint=hook)
            try:
                with self._observed():
                    # the per-attempt execution span: every gpu.*/sim.*
                    # span opened underneath nests inside it, so the
                    # whole attempt carries this job's trace context
                    with _obs.span("serve.execute", "serve",
                                   trace_id=handle.trace_id,
                                   job_id=handle.job_id, attempt=attempt,
                                   scheme=req.scheme,
                                   fingerprint=fp[:12]):
                        sim = RoomSimulation(cfg)
                        if resume is not None:
                            sim.restore(resume)
                        else:
                            if req.impulse is not None:
                                sim.add_impulse(req.impulse)
                            for name, pos in req.receiver_items():
                                sim.add_receiver(name, pos)
                        sim.run(req.steps - sim.time_step)
            except (ClError, SimulationDiverged) as failed:
                error = f"attempt {attempt}: {failed}"
                self.flight.record(
                    "attempt_failed", start_ms, job=handle.job_id,
                    trace=handle.trace_id, attempt=attempt,
                    error=type(failed).__name__, detail=str(failed)[:200])
                if isinstance(failed, SimulationDiverged):
                    self.dump_blackbox(
                        reason=f"SimulationDiverged: job {fp[:12]} "
                               f"attempt {attempt}")
                if self.obs is not None:
                    self.obs.metrics.counter(
                        "repro_serve_retries_total",
                        "Per-job attempts that ended in a typed failure",
                        ("error",)).inc(error=type(failed).__name__)
                continue
            except WorkerCrash as death:
                # the (simulated) process is dying: record the incident
                # and flush the black box before the exception unwinds
                self.flight.record(
                    "crash", start_ms, job=handle.job_id,
                    trace=handle.trace_id, attempt=attempt,
                    detail=str(death)[:200])
                self.dump_blackbox(reason=str(death)[:200])
                raise
            duration = sim.modelled_gpu_time_ms + sim.modelled_halo_time_ms
            return JobResult(
                field=sim.curr[:sim._N].copy(), time_step=sim.time_step,
                scheme=req.scheme, precision=req.precision,
                devices=tuple(d.name for d in (sim.devices or devices)),
                kernel_time_ms=sim.modelled_gpu_time_ms,
                halo_time_ms=sim.modelled_halo_time_ms,
                receivers={k: sim.receiver_signal(k) for k in sim.receivers},
                policy_log=tuple(sim.policy_log),
                submit_ms=handle.submit_ms, start_ms=start_ms,
                end_ms=start_ms + duration, attempts=attempt), ""
        return None, error or "exhausted retry budget"

    # -- durability --------------------------------------------------------------
    def _journal(self, event: str, handle: JobHandle, fingerprint: str,
                 **payload) -> None:
        """Write-ahead append (no-op when not durable or during replay —
        replayed transitions are already in the journal)."""
        if self.journal is None or self._replaying:
            return
        clean = {k: v for k, v in payload.items() if v is not None}
        self.journal.append(event, fingerprint=fingerprint,
                            job_id=handle.job_id,
                            trace_id=handle.trace_id, **clean)

    def _checkpoint_path(self, fingerprint: str) -> str | None:
        if self.durable_dir is None:
            return None
        return os.path.join(self.durable_dir, "checkpoints",
                            f"{fingerprint}.npz")

    def _checkpoint_hook(self, fingerprint: str):
        """The periodic-checkpoint callback for one job: persist the
        snapshot atomically (durable services), then model worker death
        at the boundary (``worker_crash`` fault)."""
        path = self._checkpoint_path(fingerprint)

        def hook(cp: Checkpoint) -> None:
            if path is not None:
                cp.save(path)
            if self.faults is not None and self.faults.should_inject(
                    "worker_crash", f"worker:{fingerprint[:12]}",
                    step=cp.time_step):
                raise WorkerCrash(
                    f"injected worker crash at step {cp.time_step} of job "
                    f"{fingerprint[:12]}")
        return hook

    def _drop_checkpoint(self, fingerprint: str) -> None:
        path = self._checkpoint_path(fingerprint)
        if path is not None and os.path.exists(path):
            os.remove(path)

    def _load_resume(self, fingerprint: str) -> Checkpoint | None:
        path = self._checkpoint_path(fingerprint)
        if path is None or not os.path.exists(path):
            return None
        try:
            return Checkpoint.load(path)
        except Exception:                 # unreadable snapshot: run fresh
            os.remove(path)
            return None

    @classmethod
    def recover(cls, durable_dir, **kwargs) -> "SimulationService":
        """Rebuild a service from a durable directory by journal replay.

        Pass the same construction keywords (``devices`` etc.) as the
        crashed service — the journal records *what* to run, not the
        pool to run it on.  After recovery:

        * jobs with a ``complete`` record are served straight from the
          on-disk store (no re-execution; a lost or corrupt store entry
          silently downgrades them to re-enqueued);
        * jobs journalled terminal (``fail``/``evict``/``cancel``) stay
          terminal;
        * in-flight jobs (submitted or started, never terminal) are
          re-enqueued, resuming from their last durable mid-job
          checkpoint when one exists;
        * duplicate submits of one fingerprint share a single execution
          (fingerprint-keyed dedup), exactly as they would have live.

        Replay is idempotent: recovering an already-recovered directory
        reproduces the same terminal states with zero executions.
        Raises :class:`~repro.serve.journal.JournalCorrupt` on mid-file
        journal corruption (a torn *tail* is repaired with a warning).
        """
        kwargs["durable_dir"] = durable_dir
        svc = cls(**kwargs)
        svc._replay()
        return svc

    def _replay(self) -> None:
        """Replay the opened journal into handles (see :meth:`recover`)."""
        requests: dict[str, dict] = {}          # fp -> encoded request
        submits: dict[str, int] = {}            # fp -> number of submits
        status: dict[str, tuple[str, dict]] = {}   # fp -> last event
        traces: dict[str, str] = {}             # fp -> journalled trace id
        order: list[str] = []
        for rec in self._journal_records:
            fp = rec.fingerprint
            if rec.event == "submit":
                if fp not in requests:
                    requests[fp] = rec.payload.get("request")
                    order.append(fp)
                submits[fp] = submits.get(fp, 0) + 1
            if rec.trace_id is not None and fp not in traces:
                traces[fp] = rec.trace_id
            status[fp] = (rec.event, rec.payload)
        self._replaying = True
        try:
            for fp in order:
                n = submits[fp]
                self.recovery["deduped"] += n - 1
                request = decode_request(requests[fp])
                handles = []
                for _ in range(n):
                    h = JobHandle(self._next_id, request, self.now_ms, self)
                    # journalled trace context wins; pre-trace journals
                    # fall back to the handle's derived id, which is the
                    # same id the crashed incarnation derived
                    if fp in traces:
                        h.trace_id = traces[fp]
                    self._next_id += 1
                    self._register(h)
                    handles.append(h)
                event, payload = status[fp]
                if event == "complete" and self.store is not None:
                    stored = self.store.get(fp)
                    if stored is not None:
                        self.result_cache.put(fp, stored)
                        for h in handles:
                            self._complete(h, ResultCache.rebase(
                                stored, submit_ms=h.submit_ms,
                                now_ms=self.now_ms))
                        self._recovered(fp, "from_store", n)
                        continue
                    event = "start"     # store lost the payload: re-run
                if event in ("fail", "evict", "cancel"):
                    reason = (payload.get("error") or payload.get("reason")
                              or f"journalled {event}")
                    for h in handles:
                        if event == "fail":
                            self._fail(h, reason)
                        else:
                            self._evict(h, reason)
                    self._recovered(fp, "terminal", n)
                    continue
                cp = self._load_resume(fp)
                if cp is not None:
                    self._resume[fp] = cp
                for h in handles:
                    self.queue.requeue(h)
                self._recovered(fp, "resumed" if cp is not None
                                else "requeued", n)
        finally:
            self._replaying = False
        self._gauge_depth()

    def _recovered(self, fingerprint: str, mode: str, count: int) -> None:
        self.recovery[mode].append(fingerprint)
        self.flight.record("recovered", self.now_ms, fp=fingerprint[:12],
                           mode=mode, count=count)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_serve_recovered_jobs_total",
                "Jobs reconstructed by journal replay, by recovery mode",
                ("mode",)).inc(count, mode=mode)

    def close(self) -> None:
        """Release the journal's file handle (recovery reopens it)."""
        if self.journal is not None:
            self.journal.close()

    # -- bookkeeping -------------------------------------------------------------
    def _register(self, handle: JobHandle) -> None:
        """Track a freshly admitted handle (counts it in its current,
        normally QUEUED, state)."""
        with self._lock:
            self._state_counts[handle.state] += 1
            self._handles.append(handle)

    def _transition(self, handle: JobHandle, new_state: str) -> None:
        """Move a handle between lifecycle states, keeping the
        incremental per-state counts (and therefore :meth:`health`)
        consistent.  Every state assignment in the service goes through
        here."""
        with self._lock:
            self._state_counts[handle.state] -= 1
            self._state_counts[new_state] += 1
            handle.state = new_state

    def _complete(self, handle: JobHandle, result: JobResult) -> None:
        self._journal("complete", handle, handle.request.fingerprint(),
                      end_ms=result.end_ms, from_cache=result.from_cache)
        self._transition(handle, "DONE")
        handle._finish(result)
        self._waits.append(result.wait_ms)
        self._latencies.append(result.latency_ms)
        self.flight.record(
            "complete", result.end_ms, job=handle.job_id,
            trace=handle.trace_id, from_cache=result.from_cache,
            attempts=result.attempts,
            latency_ms=round(result.latency_ms, 6))
        if self.timeseries is not None:
            t = result.end_ms
            self.timeseries.observe("completed", t)
            self.timeseries.observe("wait_ms", t, result.wait_ms)
            self.timeseries.observe("latency_ms", t, result.latency_ms)
        if self.obs is not None:
            m = self.obs.metrics
            m.counter("repro_serve_jobs_total",
                      "Jobs by terminal state", ("state",)).inc(state="DONE")
            m.histogram("repro_serve_wait_ms",
                        "Modelled queue wait per completed job").observe(
                            result.wait_ms)
            m.histogram("repro_serve_latency_ms",
                        "Modelled submit-to-done latency per completed "
                        "job").observe(result.latency_ms)
            self.obs.tracer.event(
                "serve.job", "serve", 0.0, job_id=handle.job_id,
                scheme=result.scheme, state="DONE",
                from_cache=result.from_cache, attempts=result.attempts,
                wait_ms=round(result.wait_ms, 6),
                latency_ms=round(result.latency_ms, 6))
            self._lane(handle, result.submit_ms, result.start_ms,
                       result.end_ms, state="DONE",
                       from_cache=result.from_cache,
                       attempts=result.attempts,
                       devices=",".join(result.devices))
        self._slo_eval(result.end_ms)

    def _fail(self, handle: JobHandle, error: str) -> None:
        self._journal("fail", handle, handle.request.fingerprint(),
                      error=error[:500])
        self._transition(handle, "FAILED")
        handle._fail(error)
        self.flight.record("fail", self.now_ms, job=handle.job_id,
                           trace=handle.trace_id, error=error[:200])
        if self.timeseries is not None:
            self.timeseries.observe("failed", self.now_ms)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_serve_jobs_total", "Jobs by terminal state",
                ("state",)).inc(state="FAILED")
            self.obs.tracer.event("serve.job", "serve", 0.0,
                                  job_id=handle.job_id, state="FAILED",
                                  error=error[:200])
            self._lane(handle, handle.submit_ms, self.now_ms, self.now_ms,
                       state="FAILED", error=error[:200])
        self._slo_eval(self.now_ms)

    def _evict(self, handle: JobHandle, reason: str) -> None:
        self._journal("cancel" if reason == "cancelled" else "evict",
                      handle, handle.request.fingerprint(),
                      reason=reason[:500])
        handle.error = reason
        self._transition(handle, "EVICTED")
        self.flight.record("evict", self.now_ms, job=handle.job_id,
                           trace=handle.trace_id, reason=reason[:200])
        if self.timeseries is not None:
            self.timeseries.observe("evicted", self.now_ms)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_serve_jobs_total", "Jobs by terminal state",
                ("state",)).inc(state="EVICTED")
            self.obs.tracer.event("serve.job", "serve", 0.0,
                                  job_id=handle.job_id, state="EVICTED",
                                  reason=reason[:200])
            self._lane(handle, handle.submit_ms, self.now_ms, self.now_ms,
                       state="EVICTED", reason=reason[:200])
        self._slo_eval(self.now_ms)
        self._gauge_depth()

    def _lane(self, handle: JobHandle, submit_ms: float, start_ms: float,
              end_ms: float, **attrs) -> None:
        """Record the job's lifecycle lane: a ``job`` span over its whole
        submit→terminal life, with ``job.wait`` / ``job.run`` children.
        These are retroactive :meth:`~repro.obs.Tracer.interval` spans —
        service-clock arithmetic, never clock advances — and carry
        ``trace_id`` so the Chrome exporter pins each trace to its own
        lane (one ``tid`` per trace)."""
        tr = self.obs.tracer
        job = tr.interval("job", "job", submit_ms, end_ms,
                          trace_id=handle.trace_id, job_id=handle.job_id,
                          **attrs)
        if start_ms > submit_ms:
            tr.interval("job.wait", "job", submit_ms, start_ms, parent=job,
                        trace_id=handle.trace_id, job_id=handle.job_id)
        if end_ms > start_ms:
            tr.interval("job.run", "job", start_ms, end_ms, parent=job,
                        trace_id=handle.trace_id, job_id=handle.job_id)

    def _slo_eval(self, now_ms: float) -> None:
        if self.slo is not None:
            self.slo.evaluate(now_ms, obs=self.obs)

    def _observed(self):
        if self.obs is None:
            from contextlib import nullcontext
            return nullcontext()
        return _obs.observe(self.obs)

    def _ts(self, name: str, value: float = 1.0,
            t: float | None = None) -> None:
        """One time-series observation at the service clock (no-op with
        observability off)."""
        if self.timeseries is not None:
            self.timeseries.observe(
                name, self.now_ms if t is None else t, value)

    def dump_blackbox(self, path=None, reason: str = "") -> dict | None:
        """Dump the flight recorder to JSON — the service's black box.

        Defaults to ``<durable_dir>/flight-recorder.json``; a
        non-durable service with no explicit ``path`` returns ``None``
        (nowhere durable to put it).  Called automatically on
        :class:`~repro.acoustics.sim.SimulationDiverged` and on a
        (simulated) worker crash; the chaos harness collects one dump
        per incarnation.
        """
        if path is None:
            if self.durable_dir is None:
                return None
            path = os.path.join(self.durable_dir, "flight-recorder.json")
        return self.flight.dump(path, reason=reason)

    def _gauge_depth(self) -> None:
        if self.obs is not None:
            self.obs.metrics.gauge(
                "repro_serve_queue_depth",
                "Live jobs waiting in the admission queue").set(
                    len(self.queue))

    def _cache_metric(self, tier: str, *, hit: bool) -> None:
        if self.obs is None:
            return
        name = ("repro_serve_cache_hits_total" if hit
                else "repro_serve_cache_misses_total")
        self.obs.metrics.counter(
            name, "Service cache lookups by tier and outcome",
            ("tier",)).inc(tier=tier)
        self._ts(f"cache_{'hit' if hit else 'miss'}:{tier}")

    def __repr__(self) -> str:
        names = ",".join(d.name for d in self.pool.devices)
        return (f"SimulationService(pool=({names}), queued={len(self.queue)}, "
                f"submitted={len(self._handles)})")


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    xs = sorted(values)
    rank = max(1, int(-(-q * len(xs) // 100)))   # ceil(q/100 * n)
    return float(xs[min(rank, len(xs)) - 1])
