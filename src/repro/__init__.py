"""repro — reproduction of "Code Generation for Room Acoustics Simulations
with Complex Boundary Conditions using LIFT" (Stoltzfus et al., IPDPS 2021).

Subpackages
-----------
``repro.lift``
    The paper's primary contribution: a pattern-based data-parallel IR and
    code generator (OpenCL C text + executable NumPy backend) extended with
    host-code orchestration and in-place update primitives.
``repro.acoustics``
    The room-acoustics FDTD substrate: geometry, boundary topology,
    materials (frequency-independent and frequency-dependent), reference
    kernels (paper Listings 1-4), LIFT programs (Listings 5-8) and a
    simulation driver.
``repro.gpu``
    A virtual OpenCL GPU: device table (paper Table III), an analytic
    roofline cost model, a host runtime with profiling, and a
    workgroup-size autotuner.
``repro.bench``
    Regeneration harnesses for every table and figure in the paper's
    evaluation (Tables II-VI, Figures 2, 4, 5, 6), plus strong/weak
    multi-device scaling sweeps.
``repro.api``
    The unified front door: ``Session(devices=..., resilient=...)``
    owning the device pool, fault policy, and observability sink, with
    ``session.simulate(...)`` / ``session.bench(...)`` returning typed
    results.  Start here::

        from repro import api
        session = api.Session(devices="RadeonR9:2")
        result = session.simulate(room, steps=100)
``repro.serve``
    The serving layer over all of the above: a ``SimulationService``
    with a bounded priority queue, same-program batching over a device
    pool, compile/result caches, and deadline/retry job lifecycle —
    ``session.service()`` or ``SimulationService(devices="TitanBlack:2")``.
"""

__version__ = "1.0.0"

from . import lift, serve
from .api import BenchResult, Session, SimulationResult

__all__ = ["BenchResult", "Session", "SimulationResult", "api", "lift",
           "serve", "__version__"]
