"""Simulation-level legacy-vs-arena bit-identity and zero-allocation.

``SimConfig.lift_steady`` selects between the legacy (allocating) NumPy
emitter and the steady-state arena emitter on the ``lift`` backend.
Both must produce **bit-identical** trajectories over many steps, for
every scheme and both precisions — the acceptance bar of the
steady-state optimiser (and what `repro.bench wallclock` re-verifies on
every run).
"""

import numpy as np
import pytest

from repro.acoustics import RoomSimulation, SimConfig
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.materials import (default_fd_materials,
                                       default_fi_materials)

STEPS = 50


def make_sim(scheme, precision, steady, grid=(12, 10, 9)):
    mats = (default_fd_materials(3) if scheme == "fd_mm"
            else default_fi_materials(3))
    sim = RoomSimulation(SimConfig(
        room=Room(Grid3D(*grid), DomeRoom()), scheme=scheme,
        backend="lift", precision=precision, materials=mats,
        lift_steady=steady))
    sim.add_impulse("center")
    return sim


@pytest.mark.parametrize("precision", ["single", "double"])
@pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
def test_steady_trajectory_bit_identical_to_legacy(scheme, precision):
    legacy = make_sim(scheme, precision, steady=False)
    steady = make_sim(scheme, precision, steady=True)
    for _ in range(STEPS):
        legacy.step()
        steady.step()
    np.testing.assert_array_equal(steady.curr, legacy.curr)
    np.testing.assert_array_equal(steady.prev, legacy.prev)
    if scheme == "fd_mm":                   # FD branch state too
        np.testing.assert_array_equal(steady.g1, legacy.g1)
        np.testing.assert_array_equal(steady.v1, legacy.v1)
        np.testing.assert_array_equal(steady.v2, legacy.v2)


@pytest.mark.parametrize("scheme", ["fi", "fd_mm"])
def test_steady_stepping_is_allocation_free(scheme):
    """Warm up, freeze every workspace, keep stepping: no full-grid
    allocation may happen after warm-up (frozen arenas raise)."""
    sim = make_sim(scheme, "double", steady=True)
    sim.run(3)
    workspaces = [ws for ws in (getattr(sim, "_ws_fused", None),
                                getattr(sim, "_ws_volume", None),
                                getattr(sim, "_ws_boundary", None))
                  if ws is not None]
    assert workspaces, "steady lift backend created no workspaces"
    for ws in workspaces:
        ws.freeze()
    sim.run(10)                              # must not raise
    assert all(ws.hits > 0 for ws in workspaces)


def test_single_precision_sim_state_stays_float32():
    sim = make_sim("fi_mm", "single", steady=True)
    sim.run(5)
    assert sim.curr.dtype == np.float32
    for ws in (sim._ws_volume, sim._ws_boundary):
        for name, buf in ws._slots.items():
            assert buf.dtype != np.float64, (
                f"{ws.label}: slot {name!r} upcast to float64")
