"""Tests for the FDTD grid (repro.acoustics.grid)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.acoustics.grid import (Grid3D, SPEED_OF_SOUND, courant_limit,
                                  paper_room_grids)


class TestConstruction:
    def test_courant_limit_3d(self):
        assert courant_limit() == pytest.approx(1 / math.sqrt(3))

    def test_default_courant_is_stable(self):
        g = Grid3D(10, 10, 10)
        assert g.courant <= courant_limit() + 1e-12

    def test_rejects_unstable_courant(self):
        with pytest.raises(ValueError, match="stability"):
            Grid3D(10, 10, 10, courant=0.7)

    def test_rejects_zero_courant(self):
        with pytest.raises(ValueError):
            Grid3D(10, 10, 10, courant=0.0)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            Grid3D(2, 10, 10)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            Grid3D(10, 10, 10, spacing=-1.0)


class TestSizes:
    def test_num_points(self):
        g = Grid3D(10, 8, 6)
        assert g.num_points == 480
        assert g.shape == (6, 8, 10)

    def test_interior(self):
        g = Grid3D(10, 8, 6)
        assert g.interior_shape == (4, 6, 8)
        assert g.num_interior == 192

    def test_paper_rooms(self):
        rooms = paper_room_grids()
        assert rooms["602"].num_points == 602 * 402 * 302
        assert rooms["336"].shape == (336, 336, 336)
        assert rooms["302"].num_points == 302 * 202 * 152


class TestTimeStep:
    def test_dt_formula(self):
        g = Grid3D(10, 10, 10, spacing=0.05)
        assert g.dt == pytest.approx(g.courant * 0.05 / SPEED_OF_SOUND)

    def test_sample_rate_inverse(self):
        g = Grid3D(10, 10, 10)
        assert g.sample_rate == pytest.approx(1.0 / g.dt)

    def test_lam2(self):
        g = Grid3D(10, 10, 10)
        assert g.lam2 == pytest.approx(g.lam ** 2)


class TestIndexing:
    @given(st.integers(0, 9), st.integers(0, 7), st.integers(0, 5))
    def test_roundtrip(self, x, y, z):
        g = Grid3D(10, 8, 6)
        idx = g.flat_index(x, y, z)
        assert g.coords_of(idx) == (x, y, z)

    def test_x_fastest(self):
        g = Grid3D(10, 8, 6)
        assert g.flat_index(1, 0, 0) - g.flat_index(0, 0, 0) == 1
        assert g.flat_index(0, 1, 0) - g.flat_index(0, 0, 0) == 10
        assert g.flat_index(0, 0, 1) - g.flat_index(0, 0, 0) == 80

    def test_matches_paper_listing1(self):
        # idx = z*Nx*Ny + (y*Nx + x)
        g = Grid3D(7, 5, 3)
        for (x, y, z) in [(0, 0, 0), (3, 2, 1), (6, 4, 2)]:
            assert g.flat_index(x, y, z) == z * 7 * 5 + (y * 7 + x)

    def test_vectorised_indexing(self):
        g = Grid3D(10, 8, 6)
        xs = np.array([0, 1, 2])
        idx = g.flat_index(xs, 0, 0)
        np.testing.assert_array_equal(idx, [0, 1, 2])

    def test_neighbour_offsets(self):
        g = Grid3D(10, 8, 6)
        assert g.neighbour_offsets == (-1, 1, -10, 10, -80, 80)

    def test_as_volume_aliases(self):
        g = Grid3D(5, 4, 3)
        flat = g.allocate()
        vol = g.as_volume(flat)
        vol[1, 2, 3] = 7.0
        assert flat[g.flat_index(3, 2, 1)] == 7.0
        assert vol.shape == g.shape

    def test_allocate_dtype(self):
        g = Grid3D(5, 4, 3)
        assert g.allocate(np.float32).dtype == np.float32
