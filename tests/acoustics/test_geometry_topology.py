"""Tests for room geometry, voxelisation and boundary topology."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.acoustics.geometry import (BoxRoom, CylinderRoom, DomeRoom,
                                      LShapedRoom, Room, SphereRoom,
                                      shape_by_name, voxelize)
from repro.acoustics.grid import Grid3D
from repro.acoustics.topology import (RoomTopology, assign_materials,
                                      box_nbrs_closed_form, build_topology,
                                      compute_nbrs)

SHAPES = [BoxRoom(), DomeRoom(), SphereRoom(), CylinderRoom(), LShapedRoom()]


def small_grid():
    return Grid3D(14, 12, 10)


class TestVoxelize:
    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s.name)
    def test_halo_always_outside(self, shape):
        g = small_grid()
        inside = voxelize(shape, g)
        assert not inside[0].any() and not inside[-1].any()
        assert not inside[:, 0].any() and not inside[:, -1].any()
        assert not inside[:, :, 0].any() and not inside[:, :, -1].any()

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s.name)
    def test_nonempty(self, shape):
        assert voxelize(shape, small_grid()).any()

    def test_box_fills_interior(self):
        g = small_grid()
        inside = voxelize(BoxRoom(), g)
        assert inside.sum() == g.num_interior

    def test_dome_smaller_than_box(self):
        g = small_grid()
        assert voxelize(DomeRoom(), g).sum() < voxelize(BoxRoom(), g).sum()

    def test_sphere_smaller_than_cylinder(self):
        g = small_grid()
        assert voxelize(SphereRoom(), g).sum() < voxelize(CylinderRoom(), g).sum()

    def test_lshape_is_box_minus_notch(self):
        g = small_grid()
        box = voxelize(BoxRoom(), g).sum()
        l = voxelize(LShapedRoom(), g).sum()
        assert 0.5 * box < l < box

    def test_dome_xy_symmetry(self):
        g = Grid3D(13, 13, 9)
        inside = voxelize(DomeRoom(), g)
        np.testing.assert_array_equal(inside, inside[:, ::-1, :])
        np.testing.assert_array_equal(inside, inside[:, :, ::-1])

    def test_shape_by_name(self):
        assert shape_by_name("dome").name == "dome"
        with pytest.raises(ValueError):
            shape_by_name("pyramid")

    def test_room_name(self):
        r = Room(small_grid(), DomeRoom())
        assert "dome" in r.name and "14" in r.name


class TestComputeNbrs:
    def test_matches_paper_closed_form_for_box(self):
        """compute_nbrs on a box must equal Listing 1's Boolean formulas."""
        g = small_grid()
        inside = voxelize(BoxRoom(), g)
        nbrs = compute_nbrs(inside).reshape(-1)
        np.testing.assert_array_equal(nbrs, box_nbrs_closed_form(g))

    def test_outside_points_zero(self):
        g = small_grid()
        inside = voxelize(DomeRoom(), g)
        nbrs = compute_nbrs(inside)
        assert (nbrs[~inside] == 0).all()

    def test_interior_points_six(self):
        g = small_grid()
        inside = voxelize(BoxRoom(), g)
        nbrs = compute_nbrs(inside)
        assert nbrs[2, 2, 2] == 6

    def test_corner_point_three(self):
        g = small_grid()
        inside = voxelize(BoxRoom(), g)
        nbrs = compute_nbrs(inside)
        assert nbrs[1, 1, 1] == 3  # box corner has 3 inside neighbours

    def test_face_point_five(self):
        g = small_grid()
        inside = voxelize(BoxRoom(), g)
        nbrs = compute_nbrs(inside)
        assert nbrs[1, 5, 5] == 5

    def test_range(self):
        g = small_grid()
        for shape in SHAPES:
            nbrs = compute_nbrs(voxelize(shape, g))
            assert nbrs.min() >= 0 and nbrs.max() <= 6


class TestTopology:
    def test_boundary_points_have_partial_neighbours(self):
        topo = build_topology(Room(small_grid(), DomeRoom()))
        n_at_boundary = topo.nbrs[topo.boundary_indices]
        assert (n_at_boundary >= 1).all() and (n_at_boundary <= 5).all()

    def test_boundary_indices_sorted_unique(self):
        topo = build_topology(Room(small_grid(), DomeRoom()))
        b = topo.boundary_indices
        assert (np.diff(b) > 0).all()

    def test_boundary_points_inside(self):
        topo = build_topology(Room(small_grid(), DomeRoom()))
        flat_inside = topo.inside.reshape(-1)
        assert flat_inside[topo.boundary_indices].all()

    def test_box_boundary_count_closed_form(self):
        """Box boundary = interior surface shell (analytic count)."""
        g = small_grid()
        topo = build_topology(Room(g, BoxRoom()))
        ix, iy, iz = g.nx - 2, g.ny - 2, g.nz - 2
        expected = ix * iy * iz - (ix - 2) * (iy - 2) * (iz - 2)
        assert topo.num_boundary_points == expected

    def test_contiguity_between_zero_and_one(self):
        for shape in SHAPES:
            topo = build_topology(Room(small_grid(), shape))
            assert 0.0 <= topo.contiguity() <= 1.0

    def test_box_more_contiguous_than_dome(self):
        """The paper's box > dome performance comes from this property."""
        g = Grid3D(30, 22, 16)
        box = build_topology(Room(g, BoxRoom()))
        dome = build_topology(Room(g, DomeRoom()))
        assert box.contiguity() > dome.contiguity()

    def test_uniform_box_less_contiguous(self):
        """The 336³ dip: uniform dims give shorter unit-stride runs."""
        uniform = build_topology(Room(Grid3D(20, 20, 20), BoxRoom()))
        elongated = build_topology(Room(Grid3D(36, 20, 12), BoxRoom()))
        assert elongated.contiguity() > uniform.contiguity()

    def test_mean_run_length_consistent_with_contiguity(self):
        topo = build_topology(Room(small_grid(), BoxRoom()))
        c = topo.contiguity()
        assert topo.mean_run_length() == pytest.approx(1.0 / (1.0 - c), rel=0.01)


class TestMaterials:
    def test_single_material(self):
        topo = build_topology(Room(small_grid(), DomeRoom()), num_materials=1)
        assert (topo.material == 0).all()

    def test_ids_in_range(self):
        for m in (2, 3, 5):
            topo = build_topology(Room(small_grid(), DomeRoom()),
                                  num_materials=m)
            assert topo.material.min() >= 0
            assert topo.material.max() < m

    def test_multiple_materials_used(self):
        topo = build_topology(Room(small_grid(), BoxRoom()), num_materials=4)
        assert len(np.unique(topo.material)) >= 3

    def test_floor_is_material_zero(self):
        g = small_grid()
        topo = build_topology(Room(g, BoxRoom()), num_materials=4)
        x, y, z = g.coords_of(topo.boundary_indices)
        floor = z == 1
        assert (topo.material[floor] == 0).all()

    def test_deterministic(self):
        t1 = build_topology(Room(small_grid(), DomeRoom()), num_materials=4)
        t2 = build_topology(Room(small_grid(), DomeRoom()), num_materials=4)
        np.testing.assert_array_equal(t1.material, t2.material)

    def test_rejects_zero_materials(self):
        g = small_grid()
        with pytest.raises(ValueError):
            assign_materials(g, voxelize(BoxRoom(), g),
                             np.array([0], dtype=np.int32), 0)
