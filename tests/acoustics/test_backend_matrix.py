"""Cross-backend matrix: every registered backend, both precisions.

The backend registry promises two different strengths of agreement:

* the lift family (``lift``/``lift-legacy``/``numpy-steady``/``numba``)
  and ``virtual_gpu`` all execute code generated from the same
  :class:`~repro.lift.codegen.arena.ArenaProgram` lowering, so their
  trajectories are **bit-identical** — this is what lets the serve
  result cache exclude ``backend`` from :meth:`SubmitRequest.fingerprint`;
* the independent reference implementations (``numpy``, ``scalar``,
  ``lift_interp``) evaluate the same update in a different operation
  order, so they agree to rounding only.

This matrix pins both, for every scheme and precision, over enough
steps (50) that a single-ulp divergence would have amplified.
"""

import warnings

import numpy as np
import pytest

from repro.acoustics import RoomSimulation, SimConfig
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.materials import (default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.sim import BACKENDS

STEPS = 50

#: backends whose trajectories must match the lift-legacy reference
#: bit-for-bit (one ArenaProgram lowering, N emitters)
EXACT = ("lift", "lift-legacy", "numpy-steady", "numba", "virtual_gpu")
#: independent implementations: same physics, different op order
APPROX = ("numpy", "scalar", "lift_interp")


def _run(scheme, precision, backend, steps=STEPS):
    mats = (default_fd_materials(3) if scheme == "fd_mm"
            else default_fi_materials(3))
    sim = RoomSimulation(SimConfig(
        room=Room(Grid3D(12, 10, 9), DomeRoom()), scheme=scheme,
        backend=backend, precision=precision, materials=mats))
    sim.add_impulse("center")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        sim.run(steps)
    return sim


def test_registry_is_covered():
    """Every registered backend appears in exactly one comparison tier,
    so adding a backend without extending this matrix fails loudly."""
    assert sorted(EXACT + APPROX) == sorted(BACKENDS)


@pytest.mark.parametrize("precision", ["single", "double"])
@pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
def test_backend_matrix(scheme, precision):
    ref = _run(scheme, precision, "lift-legacy")
    n = ref._N
    for backend in EXACT:
        if backend == "lift-legacy":
            continue
        sim = _run(scheme, precision, backend)
        assert sim.curr.dtype == ref.curr.dtype, f"{backend}: dtype"
        assert np.array_equal(sim.curr[:n], ref.curr[:n]), (
            f"{scheme}/{precision}/{backend}: trajectory is not "
            f"bit-identical to lift-legacy after {STEPS} steps")
        assert np.array_equal(sim.prev[:n], ref.prev[:n]), (
            f"{scheme}/{precision}/{backend}: prev state diverged")
    atol = 1e-13 if precision == "double" else 1e-4
    for backend in APPROX:
        sim = _run(scheme, precision, backend)
        np.testing.assert_allclose(
            sim.curr[:n].astype(np.float64),
            ref.curr[:n].astype(np.float64), atol=atol,
            err_msg=f"{scheme}/{precision}/{backend}")


class TestBackendConfig:
    def test_lift_steady_shim_warns_exactly_once(self):
        from repro import _deprecation
        _deprecation.reset()
        room = Room(Grid3D(8, 8, 8), DomeRoom())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            a = SimConfig(room=room, backend="lift", lift_steady=True)
            b = SimConfig(room=room, backend="lift", lift_steady=False)
        dep = [w for w in caught
               if issubclass(w.category, DeprecationWarning)
               and "lift_steady" in str(w.message)]
        assert len(dep) == 1
        assert a.backend == "numpy-steady"
        assert b.backend == "lift-legacy"
        _deprecation.reset()

    def test_lift_alias_normalises_to_steady(self):
        room = Room(Grid3D(8, 8, 8), DomeRoom())
        assert SimConfig(room=room, backend="lift").backend == "numpy-steady"

    def test_unknown_backend_rejected(self):
        room = Room(Grid3D(8, 8, 8), DomeRoom())
        with pytest.raises(ValueError, match="backend"):
            SimConfig(room=room, backend="cuda")

    def test_host_program_type_validated(self):
        room = Room(Grid3D(8, 8, 8), DomeRoom())
        with pytest.raises(TypeError, match="HostProgram"):
            SimConfig(room=room, backend="virtual_gpu",
                      host_program=object())

    def test_compiled_host_program_accepted(self):
        from repro.acoustics.lift_programs import two_kernel_host
        from repro.lift.codegen.host import compile_host
        hp = two_kernel_host("fi_mm", "double", 3)
        prog = compile_host(hp.program, hp.name)
        room = Room(Grid3D(8, 8, 8), DomeRoom())
        cfg = SimConfig(room=room, backend="virtual_gpu",
                        host_program=prog)
        assert cfg.host_program is prog
