"""Tests for the LIFT acoustics programs (paper Listings 5–8).

Each program is validated through all code paths: interpreter, NumPy
backend, and (for structure) the OpenCL generator — against the scalar
transliterations of the paper's C listings.
"""

import numpy as np
import pytest

from repro.acoustics import kernels_scalar as ks
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import (LiftKernelProgram, fd_mm_boundary,
                                           fi_fused_3d, fi_fused_flat,
                                           fi_mm_boundary, let,
                                           two_kernel_host, volume_kernel)
from repro.acoustics.materials import (MaterialTable, default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.topology import build_topology
from repro.lift.ast import Param
from repro.lift.codegen.numpy_backend import compile_numpy
from repro.lift.interp import Interp
from repro.lift.type_inference import infer
from repro.lift.types import Double, Float


@pytest.fixture(scope="module")
def setup():
    g = Grid3D(12, 10, 9)
    topo = build_topology(Room(g, DomeRoom()), num_materials=3)
    rng = np.random.default_rng(42)
    N = g.num_points
    guard = g.nx * g.ny
    ins = topo.inside.reshape(-1)

    def state():
        a = np.zeros(N + guard)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    return dict(g=g, topo=topo, rng=rng, N=N, guard=guard,
                prev=state(), curr=state(),
                nbrs_guarded=np.concatenate(
                    [topo.nbrs, np.zeros(guard, np.int32)]))


class TestProgramConstruction:
    @pytest.mark.parametrize("builder", [fi_fused_3d, fi_fused_flat,
                                         volume_kernel, fi_mm_boundary])
    def test_typechecks(self, builder):
        prog = builder("double")
        assert isinstance(prog, LiftKernelProgram)
        infer(prog.kernel)  # must not raise

    def test_fd_mm_typechecks(self):
        infer(fd_mm_boundary("double", 3).kernel)

    def test_precision_selects_scalar(self):
        assert fi_mm_boundary("single").dtype is Float
        assert fi_mm_boundary("double").dtype is Double

    def test_host_program_builders(self):
        for scheme in ("fi_mm", "fd_mm"):
            hp = two_kernel_host(scheme, "double")
            infer(hp.program)

    def test_host_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            two_kernel_host("pml", "double")

    def test_let_evaluates_once(self):
        from repro.lift.ast import BinOp
        x = Param("x", Double)
        e = let([(x, BinOp("+", 1.0, 2.0))], BinOp("*", x, x))
        assert Interp().run(
            __import__("repro.lift.ast", fromlist=["Lambda"]).Lambda([], e)
        ) == 9.0


class TestVolumeKernel:
    def test_numpy_backend_vs_scalar(self, setup):
        s = setup
        g = s["g"]
        nxt_ref = np.zeros(s["N"])
        ks.volume_step_scalar(s["prev"][:s["N"]], s["curr"][:s["N"]],
                              nxt_ref, s["topo"].nbrs, g.nx, g.ny, g.nz,
                              g.courant)
        nk = compile_numpy(volume_kernel("double").kernel, "vol")
        out = np.zeros(s["N"] + s["guard"])
        nk.fn(s["prev"], s["curr"], s["nbrs_guarded"], g.courant, g.nx,
              g.nx * g.ny, N=s["N"], NP=s["N"] + s["guard"], out=out)
        np.testing.assert_allclose(out[:s["N"]], nxt_ref, atol=1e-13)

    def test_interp_vs_scalar(self, setup):
        s = setup
        g = s["g"]
        nxt_ref = np.zeros(s["N"])
        ks.volume_step_scalar(s["prev"][:s["N"]], s["curr"][:s["N"]],
                              nxt_ref, s["topo"].nbrs, g.nx, g.ny, g.nz,
                              g.courant)
        interp = Interp(sizes={"N": s["N"], "NP": s["N"] + s["guard"]})
        out = interp.run(volume_kernel("double").kernel, s["prev"],
                         s["curr"], s["nbrs_guarded"], g.courant, g.nx,
                         g.nx * g.ny)
        np.testing.assert_allclose(np.asarray(out), nxt_ref, atol=1e-13)


class TestFusedKernels:
    def test_flat_vs_scalar(self, setup):
        s = setup
        g = s["g"]
        beta = 0.35
        ref = np.zeros(s["N"])
        ks.fi_fused_step_scalar_nbrs(s["prev"][:s["N"]], s["curr"][:s["N"]],
                                     ref, s["topo"].nbrs, g.nx, g.ny, g.nz,
                                     g.courant, beta)
        nk = compile_numpy(fi_fused_flat("double").kernel, "fused")
        out = np.zeros(s["N"] + s["guard"])
        nk.fn(s["prev"], s["curr"], s["nbrs_guarded"], g.courant, beta,
              g.nx, g.nx * g.ny, N=s["N"], NP=s["N"] + s["guard"], out=out)
        np.testing.assert_allclose(out[:s["N"]], ref, atol=1e-13)

    def test_3d_vs_scalar_interior(self, setup):
        s = setup
        g = s["g"]
        beta = 0.35
        ref = np.zeros(s["N"])
        ks.fi_fused_step_scalar_nbrs(s["prev"][:s["N"]], s["curr"][:s["N"]],
                                     ref, s["topo"].nbrs, g.nx, g.ny, g.nz,
                                     g.courant, beta)
        nk = compile_numpy(fi_fused_3d("double").kernel, "fused3d")
        out = np.zeros((g.nz - 2, g.ny - 2, g.nx - 2))
        nk.fn(s["prev"][:s["N"]].reshape(g.shape),
              s["curr"][:s["N"]].reshape(g.shape),
              s["topo"].nbrs.reshape(g.shape), g.courant, beta,
              NX=g.nx, NY=g.ny, NZ=g.nz, out=out)
        ref_int = ref.reshape(g.shape)[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(out, ref_int, atol=1e-13)

    def test_flat_and_3d_agree(self, setup):
        s = setup
        g = s["g"]
        nk_flat = compile_numpy(fi_fused_flat("double").kernel, "f")
        out_flat = np.zeros(s["N"] + s["guard"])
        nk_flat.fn(s["prev"], s["curr"], s["nbrs_guarded"], g.courant, 0.2,
                   g.nx, g.nx * g.ny, N=s["N"], NP=s["N"] + s["guard"],
                   out=out_flat)
        nk_3d = compile_numpy(fi_fused_3d("double").kernel, "f3")
        out_3d = np.zeros((g.nz - 2, g.ny - 2, g.nx - 2))
        nk_3d.fn(s["prev"][:s["N"]].reshape(g.shape),
                 s["curr"][:s["N"]].reshape(g.shape),
                 s["topo"].nbrs.reshape(g.shape), g.courant, 0.2,
                 NX=g.nx, NY=g.ny, NZ=g.nz, out=out_3d)
        flat_int = out_flat[:s["N"]].reshape(g.shape)[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(out_3d, flat_int, atol=1e-13)


class TestBoundaryKernels:
    def _volume(self, s):
        g = s["g"]
        nxt = np.zeros(s["N"])
        ks.volume_step_scalar(s["prev"][:s["N"]], s["curr"][:s["N"]], nxt,
                              s["topo"].nbrs, g.nx, g.ny, g.nz, g.courant)
        return nxt

    def test_fi_mm_numpy_backend(self, setup):
        s = setup
        g, topo = s["g"], s["topo"]
        table = MaterialTable.from_fi(default_fi_materials(3))
        nxt = self._volume(s)
        ref = nxt.copy()
        ks.fi_mm_boundary_scalar(ref, s["prev"][:s["N"]],
                                 topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, g.courant)
        nk = compile_numpy(fi_mm_boundary("double").kernel, "fimm")
        buf = np.concatenate([nxt, np.zeros(s["guard"])])
        nk.fn(topo.boundary_indices, topo.material, topo.nbrs, table.beta,
              buf, s["prev"], g.courant, N=s["N"],
              K=topo.num_boundary_points, M=table.num_materials)
        np.testing.assert_allclose(buf[:s["N"]], ref, atol=1e-13)

    def test_fi_mm_interp(self, setup):
        s = setup
        g, topo = s["g"], s["topo"]
        table = MaterialTable.from_fi(default_fi_materials(3))
        nxt = self._volume(s)
        ref = nxt.copy()
        ks.fi_mm_boundary_scalar(ref, s["prev"][:s["N"]],
                                 topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, g.courant)
        buf = nxt.copy()
        interp = Interp(sizes={"N": s["N"], "K": topo.num_boundary_points,
                               "M": table.num_materials})
        interp.run(fi_mm_boundary("double").kernel, topo.boundary_indices,
                   topo.material, topo.nbrs, table.beta, buf,
                   s["prev"][:s["N"]], g.courant)
        np.testing.assert_allclose(buf, ref, atol=1e-13)

    def test_fd_mm_numpy_backend(self, setup):
        s = setup
        g, topo = s["g"], s["topo"]
        rng = np.random.default_rng(9)
        table = MaterialTable.from_fd(default_fd_materials(3), 3)
        K = topo.num_boundary_points
        nxt = self._volume(s)
        g1 = rng.standard_normal(3 * K)
        v2 = rng.standard_normal(3 * K)
        ref = nxt.copy()
        g1r, v1r, v2r = g1.copy(), np.zeros(3 * K), v2.copy()
        ks.fd_mm_boundary_scalar(ref, s["prev"][:s["N"]],
                                 topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, table.BI,
                                 table.DI, table.F, table.D, g1r, v1r, v2r,
                                 g.courant)
        nk = compile_numpy(fd_mm_boundary("double", 3).kernel, "fdmm")
        buf = np.concatenate([nxt, np.zeros(s["guard"])])
        g1n, v1n, v2n = g1.copy(), np.zeros(3 * K), v2.copy()
        nk.fn(topo.boundary_indices, topo.material, topo.nbrs, table.beta,
              table.BI.reshape(-1), table.DI.reshape(-1),
              table.F.reshape(-1), table.D.reshape(-1), buf, s["prev"],
              g1n, v2n, v1n, g.courant, K, N=s["N"],
              M=table.num_materials)
        np.testing.assert_allclose(buf[:s["N"]], ref, atol=1e-12)
        np.testing.assert_allclose(g1n, g1r, atol=1e-12)
        np.testing.assert_allclose(v1n, v1r, atol=1e-12)

    def test_fd_mm_interp(self, setup):
        s = setup
        g, topo = s["g"], s["topo"]
        rng = np.random.default_rng(10)
        table = MaterialTable.from_fd(default_fd_materials(3), 3)
        K = topo.num_boundary_points
        nxt = self._volume(s)
        g1 = rng.standard_normal(3 * K)
        v2 = rng.standard_normal(3 * K)
        ref = nxt.copy()
        g1r, v1r, v2r = g1.copy(), np.zeros(3 * K), v2.copy()
        ks.fd_mm_boundary_scalar(ref, s["prev"][:s["N"]],
                                 topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, table.BI,
                                 table.DI, table.F, table.D, g1r, v1r, v2r,
                                 g.courant)
        buf = nxt.copy()
        g1i, v1i, v2i = g1.copy(), np.zeros(3 * K), v2.copy()
        interp = Interp(sizes={"N": s["N"], "K": K,
                               "M": table.num_materials})
        interp.run(fd_mm_boundary("double", 3).kernel,
                   topo.boundary_indices, topo.material, topo.nbrs,
                   table.beta, table.BI.reshape(-1), table.DI.reshape(-1),
                   table.F.reshape(-1), table.D.reshape(-1), buf,
                   s["prev"][:s["N"]], g1i, v2i, v1i, g.courant, K)
        np.testing.assert_allclose(buf, ref, atol=1e-12)
        np.testing.assert_allclose(g1i, g1r, atol=1e-12)
        np.testing.assert_allclose(v1i, v1r, atol=1e-12)


class TestHostProgramInterpreted:
    """The reference interpreter executes the *entire* Listing-5 host
    program — transfers, two kernel launches, host-level in-place WriteTo —
    and matches the hand-written two-kernel pipeline exactly."""

    def test_fi_mm_host_program(self, setup):
        s = setup
        g, topo = s["g"], s["topo"]
        table = MaterialTable.from_fi(default_fi_materials(3))
        hp = two_kernel_host("fi_mm", "double")
        interp = Interp(sizes=dict(N=s["N"], NP=s["N"] + s["guard"],
                                   K=topo.num_boundary_points,
                                   M=table.num_materials))
        out = interp.run(hp.program, topo.boundary_indices, topo.material,
                         s["nbrs_guarded"], table.beta, s["curr"],
                         s["prev"], g.courant, g.nx, g.nx * g.ny)
        ref = np.zeros(s["N"])
        ks.volume_step_scalar(s["prev"][:s["N"]], s["curr"][:s["N"]], ref,
                              topo.nbrs, g.nx, g.ny, g.nz, g.courant)
        ks.fi_mm_boundary_scalar(ref, s["prev"][:s["N"]],
                                 topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, g.courant)
        np.testing.assert_allclose(np.asarray(out)[:s["N"]], ref,
                                   atol=1e-13)

    def test_fd_mm_host_program(self, setup):
        s = setup
        g, topo = s["g"], s["topo"]
        rng = np.random.default_rng(12)
        table = MaterialTable.from_fd(default_fd_materials(3), 3)
        K = topo.num_boundary_points
        g1 = rng.standard_normal(3 * K)
        v2 = rng.standard_normal(3 * K)
        hp = two_kernel_host("fd_mm", "double", 3)
        interp = Interp(sizes=dict(N=s["N"], NP=s["N"] + s["guard"], K=K,
                                   M=table.num_materials))
        g1i, v1i, v2i = g1.copy(), np.zeros(3 * K), v2.copy()
        # host parameter order: boundaries, material, neighbors, beta,
        # prev1 (t), prev2 (t-1), l, Nx, NxNy, then the FD extras
        out = interp.run(hp.program, topo.boundary_indices, topo.material,
                         s["nbrs_guarded"], table.beta,
                         s["curr"], s["prev"], g.courant, g.nx,
                         g.nx * g.ny,
                         table.BI.reshape(-1), table.DI.reshape(-1),
                         table.F.reshape(-1), table.D.reshape(-1),
                         g1i, v2i, v1i, K)
        ref = np.zeros(s["N"])
        ks.volume_step_scalar(s["prev"][:s["N"]], s["curr"][:s["N"]], ref,
                              topo.nbrs, g.nx, g.ny, g.nz, g.courant)
        g1r, v1r, v2r = g1.copy(), np.zeros(3 * K), v2.copy()
        ks.fd_mm_boundary_scalar(ref, s["prev"][:s["N"]],
                                 topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, table.BI,
                                 table.DI, table.F, table.D, g1r, v1r,
                                 v2r, g.courant)
        np.testing.assert_allclose(np.asarray(out)[:s["N"]], ref,
                                   atol=1e-12)
        np.testing.assert_allclose(g1i, g1r, atol=1e-12)
        np.testing.assert_allclose(v1i, v1r, atol=1e-12)
