"""Tests for acoustic analysis utilities and the front-end DSL."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.acoustics import (BoxRoom, Grid3D, Room, RoomSimulation,
                             SimConfig)
from repro.acoustics.analysis import (energy_decay_curve, energy_decay_db,
                                      impulse_response, rt60_from_decay)
from repro.acoustics.dsl import AcousticsSpec, CompiledAcoustics
from repro.acoustics.materials import FIMaterial

signals = st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False),
                   min_size=2, max_size=100)


class TestEnergyDecay:
    @given(signals)
    def test_edc_monotone_nonincreasing(self, sig):
        edc = energy_decay_curve(np.asarray(sig))
        assert (np.diff(edc) <= 1e-12).all()

    @given(signals)
    def test_edc_normalised(self, sig):
        arr = np.asarray(sig)
        edc = energy_decay_curve(arr)
        if float(np.sum(arr.astype(np.float64) ** 2)) > 0:
            assert edc[0] == pytest.approx(1.0)
        assert (edc >= 0).all()

    def test_edc_zero_signal(self):
        edc = energy_decay_curve(np.zeros(10))
        assert (edc == 0).all()

    def test_edc_db_clipped(self):
        db = energy_decay_db(np.array([1.0] + [0.0] * 9))
        assert db.min() >= -120.0
        assert db[0] == pytest.approx(0.0)

    def test_rt60_of_exponential(self):
        """A known exponential decay has a closed-form RT60."""
        dt = 1e-3
        tau = 0.05  # amplitude decay constant [s]
        t = np.arange(4000) * dt
        sig = np.exp(-t / tau)
        # energy decays at 20/tau/ln(10) dB per second -> RT60
        expected = 60.0 * tau * np.log(10.0) / 20.0
        rt = rt60_from_decay(sig, dt)
        assert rt == pytest.approx(expected, rel=0.1)

    def test_rt60_too_short_signal_is_inf(self):
        # a 3-sample constant never enters the -5..-25 dB fit band
        assert rt60_from_decay(np.ones(3), 1e-3) == float("inf")

    def test_rt60_orders_decay_rates(self):
        """Faster exponential decay gives shorter RT60."""
        dt = 1e-3
        t = np.arange(4000) * dt
        slow = rt60_from_decay(np.exp(-t / 0.10), dt)
        fast = rt60_from_decay(np.exp(-t / 0.02), dt)
        assert fast < slow

    def test_rt60_in_simulation_is_finite_for_soft_walls(self):
        room = Room(Grid3D(16, 14, 12), BoxRoom())
        sim = RoomSimulation(SimConfig(room=room, scheme="fi",
                                       materials=[FIMaterial("m", 0.6)]))
        ir = impulse_response(sim, steps=250)
        assert np.isfinite(rt60_from_decay(ir, room.grid.dt))

    def test_impulse_response_length(self):
        room = Room(Grid3D(14, 12, 10), BoxRoom())
        sim = RoomSimulation(SimConfig(room=room, scheme="fi_mm"))
        ir = impulse_response(sim, steps=33)
        assert ir.shape == (33,)


class TestDSL:
    def _spec(self, **kw):
        base = dict(shape="box", size=(16, 14, 12), scheme="fi_mm",
                    materials=("concrete", "carpet"), precision="single")
        base.update(kw)
        return AcousticsSpec(**base)

    def test_compile_produces_kernels(self):
        build = self._spec().compile()
        assert isinstance(build, CompiledAcoustics)
        assert set(build.programs) == {"volume", "boundary"}
        assert "__kernel void" in build.kernel_sources["boundary"]
        assert build.host_source and "clEnqueueNDRangeKernel" in build.host_source

    def test_fi_scheme_single_kernel(self):
        build = self._spec(scheme="fi", materials=("wood",)).compile()
        assert set(build.programs) == {"fused"}
        assert build.host is None

    def test_fd_scheme(self):
        build = self._spec(scheme="fd_mm",
                           materials=("fd_concrete", "fd_curtain")).compile()
        assert "boundary" in build.kernel_sources
        assert "vel_next" in build.kernel_sources["boundary"]

    def test_fd_rejects_fi_materials(self):
        with pytest.raises(ValueError, match="frequency-dependent"):
            self._spec(scheme="fd_mm").material_objects()

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            self._spec(scheme="bem").compile()

    def test_simulation_runs(self):
        build = self._spec().compile(emit_opencl=False)
        sim = build.simulation(backend="lift")
        sim.add_impulse("center")
        sim.run(5)
        assert np.isfinite(sim.curr).all()

    def test_dsl_simulation_matches_direct(self):
        build = self._spec().compile(emit_opencl=False)
        sim_dsl = build.simulation(backend="numpy")
        sim_dsl.add_impulse("center")
        sim_dsl.run(5)

        from repro.acoustics.geometry import shape_by_name
        room = Room(Grid3D(16, 14, 12), shape_by_name("box"))
        from repro.acoustics.materials import material_by_name
        sim_direct = RoomSimulation(SimConfig(
            room=room, scheme="fi_mm", backend="numpy", precision="single",
            materials=[material_by_name("concrete"),
                       material_by_name("carpet")]))
        sim_direct.add_impulse("center")
        sim_direct.run(5)
        np.testing.assert_array_equal(sim_dsl.curr, sim_direct.curr)

    def test_room_helper(self):
        room = self._spec(shape="dome").room()
        assert room.shape.name == "dome"
        assert room.grid.nx == 16
