"""Tests for the simulation driver: backend parity and physics invariants."""

import numpy as np
import pytest

from repro.acoustics import (BoxRoom, DomeRoom, Grid3D, Room,
                             RoomSimulation, SimConfig)
from repro.acoustics.analysis import (dc_mode_amplitude, energy_decay_db,
                                      total_field_energy)
from repro.acoustics.materials import (FDMaterial, FIMaterial,
                                       default_fd_materials,
                                       default_fi_materials)


def small_room(shape=DomeRoom):
    return Room(Grid3D(16, 14, 12), shape())


class TestConfigValidation:
    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            SimConfig(room=small_room(), scheme="magic")

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            SimConfig(room=small_room(), backend="cuda")

    def test_bad_precision(self):
        with pytest.raises(ValueError):
            SimConfig(room=small_room(), precision="half")

    def test_fd_requires_fd_materials(self):
        with pytest.raises(ValueError):
            RoomSimulation(SimConfig(room=small_room(), scheme="fd_mm",
                                     materials=default_fi_materials(2)))

    def test_dtype(self):
        assert SimConfig(room=small_room(), precision="single").dtype \
            == np.float32


class TestBackendParity:
    """All four backends produce the same trajectory (double precision)."""

    @pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
    def test_parity(self, scheme):
        room = small_room()
        mats = (default_fd_materials(3) if scheme == "fd_mm"
                else default_fi_materials(3))
        states = {}
        for backend in ("numpy", "scalar", "lift", "lift_interp"):
            sim = RoomSimulation(SimConfig(room=room, scheme=scheme,
                                           backend=backend, materials=mats))
            sim.add_impulse("center")
            sim.run(4)
            states[backend] = sim.curr[:sim._N].copy()
        base = states["numpy"]
        for backend in ("scalar", "lift", "lift_interp"):
            np.testing.assert_allclose(states[backend], base, atol=1e-13,
                                       err_msg=f"{scheme}/{backend}")

    def test_fd_state_parity(self):
        room = small_room()
        mats = default_fd_materials(3)
        sims = {}
        for backend in ("numpy", "lift"):
            sim = RoomSimulation(SimConfig(room=room, scheme="fd_mm",
                                           backend=backend, materials=mats))
            sim.add_impulse("center")
            sim.run(6)
            sims[backend] = sim
        np.testing.assert_allclose(sims["lift"].g1, sims["numpy"].g1,
                                   atol=1e-13)
        np.testing.assert_allclose(sims["lift"].v2, sims["numpy"].v2,
                                   atol=1e-13)


class TestPhysics:
    def test_rigid_room_conserves_energy(self):
        """β = 0 everywhere: the field energy stays bounded (lossless).

        The impulse is injected with zero initial velocity (curr == prev at
        the source) so the scheme's secular DC mode is not excited; the
        energy proxy then oscillates in a bounded band instead of decaying.
        """
        sim = RoomSimulation(SimConfig(
            room=small_room(BoxRoom), scheme="fi",
            materials=[FIMaterial("rigid", 0.0)]))
        idx = sim.add_impulse("center")
        sim.prev[idx] += 1.0
        sim.run(2)
        e0 = total_field_energy(sim)
        lo = hi = e0
        for _ in range(300):
            sim.step()
            e = total_field_energy(sim)
            lo, hi = min(lo, e), max(hi, e)
        assert lo > 0.5 * e0
        assert hi < 2.0 * e0

    def test_rigid_impulse_grows_secularly_without_velocity_balance(self):
        """A bare impulse excites the scheme's linear-in-time DC solution —
        the well-known SLF zero mode under rigid boundaries.  Documents why
        sources are injected velocity-balanced."""
        sim = RoomSimulation(SimConfig(
            room=small_room(BoxRoom), scheme="fi",
            materials=[FIMaterial("rigid", 0.0)]))
        sim.add_impulse("center")
        sim.run(2)
        e0 = total_field_energy(sim)
        sim.run(200)
        assert total_field_energy(sim) > 3.0 * e0

    def test_absorbing_room_loses_energy(self):
        sim = RoomSimulation(SimConfig(
            room=small_room(BoxRoom), scheme="fi",
            materials=[FIMaterial("soft", 0.8)]))
        sim.add_impulse("center")
        sim.run(2)
        e0 = total_field_energy(sim)
        sim.run(100)
        assert total_field_energy(sim) < 0.5 * e0

    def test_more_absorption_decays_faster(self):
        energies = []
        for beta in (0.05, 0.3, 0.9):
            sim = RoomSimulation(SimConfig(
                room=small_room(BoxRoom), scheme="fi",
                materials=[FIMaterial("m", beta)]))
            sim.add_impulse("center")
            sim.run(120)
            energies.append(total_field_energy(sim))
        assert energies[0] > energies[1] > energies[2]

    def test_fd_mm_is_dissipative(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fd_mm",
                                       materials=default_fd_materials(4)))
        sim.add_impulse("center")
        sim.run(2)
        e0 = total_field_energy(sim)
        sim.run(150)
        assert total_field_energy(sim) < e0

    def test_stability_at_courant_limit(self):
        """No blow-up over many steps at λ = 1/√3."""
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi_mm",
                                       materials=default_fi_materials(3)))
        sim.add_impulse("center")
        sim.run(250)
        assert np.isfinite(sim.curr).all()
        assert np.abs(sim.curr).max() < 10.0

    def test_wave_propagates_outward(self):
        room = small_room(BoxRoom)
        sim = RoomSimulation(SimConfig(room=room, scheme="fi",
                                       materials=default_fi_materials(1)))
        g = room.grid
        src = sim.add_impulse("center")
        probe = g.flat_index(g.nx // 2 + 3, g.ny // 2, g.nz // 2)
        assert sim.curr[probe] == 0.0
        sim.run(6)  # wave needs ~3/λ steps to travel 3 cells
        assert sim.curr[probe] != 0.0

    def test_outside_stays_zero(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi_mm",
                                       materials=default_fi_materials(2)))
        sim.add_impulse("center")
        sim.run(30)
        outside = ~sim.topology.inside.reshape(-1)
        assert (sim.curr[:sim._N][outside] == 0).all()

    def test_guard_region_stays_zero(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi_mm",
                                       backend="lift",
                                       materials=default_fi_materials(2)))
        sim.add_impulse("center")
        sim.run(20)
        assert (sim.curr[sim._N:] == 0).all()
        assert (sim.prev[sim._N:] == 0).all()

    def test_single_precision_tracks_double(self):
        room = small_room()
        signals = {}
        for precision in ("single", "double"):
            sim = RoomSimulation(SimConfig(room=room, scheme="fi_mm",
                                           precision=precision,
                                           materials=default_fi_materials(3)))
            sim.add_impulse("center")
            sim.add_receiver("r", "center")
            sim.run(40)
            signals[precision] = sim.receiver_signal("r")
        np.testing.assert_allclose(signals["single"], signals["double"],
                                   atol=1e-4)


class TestSourcesReceivers:
    def test_impulse_outside_rejected(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi_mm"))
        with pytest.raises(ValueError):
            sim.add_impulse((0, 0, 0))

    def test_receiver_records_each_step(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi_mm"))
        sim.add_impulse("center")
        sim.add_receiver("r", "center")
        sim.run(17)
        assert sim.receiver_signal("r").shape == (17,)

    def test_time_step_counter(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi"))
        sim.run(9)
        assert sim.time_step == 9

    def test_state_snapshot_shape(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi"))
        snap = sim.state_snapshot()
        assert snap.shape == sim.grid.shape

    def test_dc_mode_helper(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi"))
        sim.add_impulse("center")
        assert dc_mode_amplitude(sim) > 0


class TestVirtualGPUBackend:
    """The full Listing-5 host orchestration as a simulation backend."""

    @pytest.mark.parametrize("scheme", ["fi_mm", "fd_mm"])
    def test_matches_numpy_trajectory(self, scheme):
        room = small_room()
        mats = (default_fd_materials(3) if scheme == "fd_mm"
                else default_fi_materials(3))
        ref = RoomSimulation(SimConfig(room=room, scheme=scheme,
                                       backend="numpy", materials=mats))
        gpu = RoomSimulation(SimConfig(room=room, scheme=scheme,
                                       backend="virtual_gpu",
                                       materials=mats))
        for sim in (ref, gpu):
            sim.add_impulse("center")
            sim.run(5)
        np.testing.assert_allclose(gpu.curr[:gpu._N], ref.curr[:ref._N],
                                   atol=1e-15)
        if scheme == "fd_mm":
            np.testing.assert_allclose(gpu.g1, ref.g1, atol=1e-15)

    def test_accumulates_modelled_time(self):
        sim = RoomSimulation(SimConfig(room=small_room(), scheme="fi_mm",
                                       backend="virtual_gpu",
                                       materials=default_fi_materials(2)))
        sim.add_impulse("center")
        sim.run(3)
        t3 = sim.modelled_gpu_time_ms
        assert t3 > 0
        sim.run(3)
        assert sim.modelled_gpu_time_ms > t3

    def test_device_retarget_changes_time_not_results(self):
        from repro.gpu.device import AMD_HD7970
        room = small_room()
        mats = default_fi_materials(2)
        a = RoomSimulation(SimConfig(room=room, scheme="fi_mm",
                                     backend="virtual_gpu", materials=mats))
        b = RoomSimulation(SimConfig(room=room, scheme="fi_mm",
                                     backend="virtual_gpu", materials=mats))
        b.set_virtual_device(AMD_HD7970)
        for sim in (a, b):
            sim.add_impulse("center")
            sim.run(3)
        np.testing.assert_array_equal(a.curr, b.curr)
        assert a.modelled_gpu_time_ms != b.modelled_gpu_time_ms

    def test_fi_scheme_runs_fused_kernel(self):
        # fi used to be rejected on this backend; it now runs the fused
        # single-kernel host program, matching the numpy baseline
        mats = default_fi_materials(1)
        gpu = RoomSimulation(SimConfig(room=small_room(), scheme="fi",
                                       backend="virtual_gpu",
                                       materials=mats))
        ref = RoomSimulation(SimConfig(room=small_room(), scheme="fi",
                                       backend="numpy", materials=mats))
        for sim in (gpu, ref):
            sim.add_impulse("center")
            sim.run(4)
        np.testing.assert_allclose(gpu.curr[:gpu._N], ref.curr[:ref._N],
                                   atol=1e-12)
        assert gpu.modelled_gpu_time_ms > 0
