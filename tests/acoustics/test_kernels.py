"""Cross-validation of the acoustics kernels.

* vectorised NumPy kernels == scalar transliterations of the paper listings;
* two-kernel scheme (Listing 2) == fused kernel (Listing 1);
* FD-MM with inert branches == FI-MM (the FI limit);
* the eliminated FD-MM kernel algebra == the coupled implicit solve.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.acoustics import kernels_numpy as kn
from repro.acoustics import kernels_scalar as ks
from repro.acoustics.geometry import BoxRoom, DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.materials import (Branch, FDMaterial, MaterialTable,
                                       default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.topology import build_topology


def make_room(shape_cls=DomeRoom, dims=(12, 10, 9), num_materials=3):
    g = Grid3D(*dims)
    topo = build_topology(Room(g, shape_cls()), num_materials=num_materials)
    return g, topo


def random_states(g, topo, rng):
    N = g.num_points
    prev = np.zeros(N)
    curr = np.zeros(N)
    ins = topo.inside.reshape(-1)
    prev[ins] = rng.standard_normal(int(ins.sum()))
    curr[ins] = rng.standard_normal(int(ins.sum()))
    return prev, curr


@pytest.fixture(scope="module")
def dome():
    return make_room(DomeRoom)


@pytest.fixture(scope="module")
def box():
    return make_room(BoxRoom)


class TestVolumeKernel:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_numpy_matches_scalar(self, seed):
        g, topo = make_room()
        rng = np.random.default_rng(seed)
        prev, curr = random_states(g, topo, rng)
        lam = g.courant
        nxt_s = np.zeros(g.num_points)
        ks.volume_step_scalar(prev, curr, nxt_s, topo.nbrs, g.nx, g.ny,
                              g.nz, lam)
        nxt_n = np.zeros(g.num_points)
        kn.volume_step(prev, curr, nxt_n, topo.nbrs, g.shape, lam)
        np.testing.assert_allclose(nxt_n, nxt_s, atol=1e-13)

    def test_outside_points_untouched(self, dome):
        g, topo = dome
        rng = np.random.default_rng(0)
        prev, curr = random_states(g, topo, rng)
        nxt = np.zeros(g.num_points)
        kn.volume_step(prev, curr, nxt, topo.nbrs, g.shape, g.courant)
        outside = ~topo.inside.reshape(-1)
        assert (nxt[outside] == 0).all()


class TestFusedVsTwoKernel:
    """Listing 1 == Listing 2 kernel 1 + kernel 2 (single material)."""

    @pytest.mark.parametrize("beta", [0.0, 0.05, 0.5, 1.0])
    def test_equivalence(self, dome, beta):
        g, topo = dome
        rng = np.random.default_rng(7)
        prev, curr = random_states(g, topo, rng)
        lam = g.courant
        fused = np.zeros(g.num_points)
        ks.fi_fused_step_scalar_nbrs(prev, curr, fused, topo.nbrs,
                                     g.nx, g.ny, g.nz, lam, beta)
        two = np.zeros(g.num_points)
        kn.volume_step(prev, curr, two, topo.nbrs, g.shape, lam)
        kn.fi_boundary(two, prev, topo.boundary_indices, topo.nbrs, lam,
                       beta)
        np.testing.assert_allclose(two, fused, atol=1e-13)

    def test_box_onthefly_nbr_matches_lookup(self):
        """Listing 1's Boolean formulas == the §II-B nbrs lookup (box)."""
        g, topo = make_room(BoxRoom, dims=(9, 8, 7))
        rng = np.random.default_rng(3)
        prev, curr = random_states(g, topo, rng)
        a = np.zeros(g.num_points)
        b = np.zeros(g.num_points)
        ks.fi_fused_step_scalar(prev, curr, a, g.nx, g.ny, g.nz,
                                g.courant, 0.3)
        ks.fi_fused_step_scalar_nbrs(prev, curr, b, topo.nbrs, g.nx, g.ny,
                                     g.nz, g.courant, 0.3)
        np.testing.assert_allclose(a, b, atol=0)


class TestFIMMBoundary:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_numpy_matches_scalar(self, seed):
        g, topo = make_room()
        rng = np.random.default_rng(seed)
        prev, curr = random_states(g, topo, rng)
        table = MaterialTable.from_fi(default_fi_materials(3))
        nxt = np.zeros(g.num_points)
        kn.volume_step(prev, curr, nxt, topo.nbrs, g.shape, g.courant)
        a, b = nxt.copy(), nxt.copy()
        ks.fi_mm_boundary_scalar(a, prev, topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, g.courant)
        kn.fi_mm_boundary(b, prev, topo.boundary_indices, topo.nbrs,
                          topo.material, table.beta, g.courant)
        np.testing.assert_allclose(a, b, atol=0)

    def test_single_material_reduces_to_fi(self, dome):
        g, topo0 = dome
        topo = build_topology(Room(g, DomeRoom()), num_materials=1)
        rng = np.random.default_rng(5)
        prev, curr = random_states(g, topo, rng)
        nxt = np.zeros(g.num_points)
        kn.volume_step(prev, curr, nxt, topo.nbrs, g.shape, g.courant)
        a, b = nxt.copy(), nxt.copy()
        beta = 0.25
        kn.fi_boundary(a, prev, topo.boundary_indices, topo.nbrs,
                       g.courant, beta)
        kn.fi_mm_boundary(b, prev, topo.boundary_indices, topo.nbrs,
                          topo.material, np.array([beta]), g.courant)
        np.testing.assert_allclose(a, b, atol=0)

    def test_only_boundary_points_touched(self, dome):
        g, topo = dome
        rng = np.random.default_rng(1)
        prev, _ = random_states(g, topo, rng)
        table = MaterialTable.from_fi(default_fi_materials(3))
        nxt = rng.standard_normal(g.num_points)
        before = nxt.copy()
        kn.fi_mm_boundary(nxt, prev, topo.boundary_indices, topo.nbrs,
                          topo.material, table.beta, g.courant)
        mask = np.ones(g.num_points, bool)
        mask[topo.boundary_indices] = False
        np.testing.assert_array_equal(nxt[mask], before[mask])


class TestFDMMBoundary:
    def _setup(self, seed=0, num_materials=3, mb=3):
        g, topo = make_room(num_materials=num_materials)
        rng = np.random.default_rng(seed)
        prev, curr = random_states(g, topo, rng)
        mats = default_fd_materials(num_materials)
        table = MaterialTable.from_fd(mats, mb)
        K = topo.num_boundary_points
        nxt = np.zeros(g.num_points)
        kn.volume_step(prev, curr, nxt, topo.nbrs, g.shape, g.courant)
        g1 = rng.standard_normal(mb * K)
        v2 = rng.standard_normal(mb * K)
        v1 = np.zeros(mb * K)
        return g, topo, table, mats, prev, nxt, g1, v1, v2

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_numpy_matches_scalar(self, seed):
        g, topo, table, mats, prev, nxt, g1, v1, v2 = self._setup(seed)
        args = (topo.boundary_indices, topo.nbrs, topo.material, table.beta,
                table.BI, table.DI, table.F, table.D)
        a = nxt.copy()
        g1a, v1a, v2a = g1.copy(), v1.copy(), v2.copy()
        ks.fd_mm_boundary_scalar(a, prev, *args, g1a, v1a, v2a, g.courant)
        b = nxt.copy()
        g1b, v1b, v2b = g1.copy(), v1.copy(), v2.copy()
        kn.fd_mm_boundary(b, prev, *args, g1b, v1b, v2b, g.courant)
        np.testing.assert_allclose(a, b, atol=1e-12)
        np.testing.assert_allclose(g1a, g1b, atol=1e-12)
        np.testing.assert_allclose(v1a, v1b, atol=1e-12)

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_eliminated_equals_implicit_solve(self, seed):
        """The kernel algebra of Listing 4 is the exact solution of the
        coupled implicit discretisation (DESIGN.md derivation)."""
        g, topo, table, mats, prev, nxt, g1, v1, v2 = self._setup(seed)
        a = nxt.copy()
        g1a, v1a, v2a = g1.copy(), v1.copy(), v2.copy()
        ks.fd_mm_boundary_scalar(a, prev, topo.boundary_indices, topo.nbrs,
                                 topo.material, table.beta, table.BI,
                                 table.DI, table.F, table.D,
                                 g1a, v1a, v2a, g.courant)
        b = nxt.copy()
        g1b, v1b, v2b = g1.copy(), v1.copy(), v2.copy()
        beta_inf = np.array([m.beta_inf for m in mats])
        branch_mrk = [[(br.m, br.r, br.k) for br in m.branches]
                      for m in mats]
        ks.fd_mm_boundary_implicit_scalar(
            b, prev, topo.boundary_indices, topo.nbrs, topo.material,
            beta_inf, branch_mrk, g1b, v1b, v2b, g.courant)
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(g1a, g1b, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(v1a, v1b, rtol=1e-10, atol=1e-10)

    def test_fi_limit_with_inert_branches(self):
        """Zero-coefficient branches make FD-MM equal FI-MM bitwise."""
        g, topo = make_room()
        rng = np.random.default_rng(11)
        prev, curr = random_states(g, topo, rng)
        K = topo.num_boundary_points
        mb = 2
        flat = [FDMaterial(f"m{i}", 0.1 * (i + 1), ()) for i in range(3)]
        table = MaterialTable.from_fd(flat, mb)
        nxt = np.zeros(g.num_points)
        kn.volume_step(prev, curr, nxt, topo.nbrs, g.shape, g.courant)
        a, b = nxt.copy(), nxt.copy()
        g1 = np.zeros(mb * K)
        v1 = np.zeros(mb * K)
        v2 = rng.standard_normal(mb * K)  # stale state must not matter
        kn.fd_mm_boundary(a, prev, topo.boundary_indices, topo.nbrs,
                          topo.material, table.beta, table.BI, table.DI,
                          table.F, table.D, g1, v1, v2, g.courant)
        kn.fi_mm_boundary(b, prev, topo.boundary_indices, topo.nbrs,
                          topo.material, table.beta, g.courant)
        np.testing.assert_allclose(a, b, atol=0)
        assert (v1 == 0).all()  # inert branches produce no velocity

    def test_branch_state_updated(self):
        g, topo, table, mats, prev, nxt, g1, v1, v2 = self._setup(2)
        g1_before = g1.copy()
        kn.fd_mm_boundary(nxt, prev, topo.boundary_indices, topo.nbrs,
                          topo.material, table.beta, table.BI, table.DI,
                          table.F, table.D, g1, v1, v2, g.courant)
        assert not np.allclose(g1, g1_before)
        assert not np.allclose(v1, 0)
