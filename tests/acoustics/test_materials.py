"""Tests for wall materials and the FD-MM coefficient derivation."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.acoustics.materials import (Branch, FDMaterial, FIMaterial,
                                       MaterialTable, default_fd_materials,
                                       default_fi_materials,
                                       material_by_name)

pos = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
nonneg = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestFIMaterial:
    def test_beta_stored(self):
        assert FIMaterial("m", 0.3).beta == 0.3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FIMaterial("m", -0.1)

    def test_rigid_is_zero(self):
        assert material_by_name("rigid").beta == 0.0

    def test_database_lookup(self):
        m = material_by_name("carpet")
        assert isinstance(m, FIMaterial)
        with pytest.raises(KeyError):
            material_by_name("unobtainium")


class TestBranchCoefficients:
    """The discrete-update coefficient identities from the derivation in
    DESIGN.md §2: BI = 1/(m + r/2 + k/4), DI = m − r/2 − k/4, F = k/2,
    D = m/2 — the exact algebra of paper Listing 4.
    """

    @given(pos, nonneg, nonneg)
    def test_identities(self, m, r, k):
        b = Branch(m, r, k)
        A = m + r / 2 + k / 4
        assert b.BI == pytest.approx(1.0 / A)
        assert b.DI == pytest.approx(m - r / 2 - k / 4)
        assert b.F == pytest.approx(k / 2)
        assert b.D == pytest.approx(m / 2)

    def test_rejects_negative_params(self):
        with pytest.raises(ValueError):
            Branch(-1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Branch(1.0, -1.0, 0.0)
        with pytest.raises(ValueError):
            Branch(1.0, 0.0, -1.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Branch(0.0, 0.0, 0.0)

    def test_resonance(self):
        b = Branch(m=1.0, r=0.1, k=4.0)
        assert b.resonance_normalised == pytest.approx(2.0)

    def test_from_resonance(self):
        dt = 1.0 / 48000.0
        b = Branch.from_resonance(1000.0, damping=1.0, strength=0.5, dt=dt)
        w0 = 2 * math.pi * 1000.0 * dt
        assert b.resonance_normalised == pytest.approx(w0)
        assert b.m == pytest.approx(2.0)

    def test_from_resonance_validation(self):
        with pytest.raises(ValueError):
            Branch.from_resonance(-1.0, 1.0, 1.0, 1e-4)
        with pytest.raises(ValueError):
            Branch.from_resonance(100.0, 1.0, 0.0, 1e-4)


class TestFDMaterial:
    def _mat(self):
        return FDMaterial("test", 0.05,
                          (Branch(1.0, 0.5, 2.0), Branch(2.0, 1.0, 8.0)))

    def test_beta_eff_combines_branches(self):
        """beta_eff = β∞ + Σ BI — the pre-combined kernel coefficient."""
        m = self._mat()
        assert m.beta_eff == pytest.approx(
            0.05 + sum(b.BI for b in m.branches))

    def test_fi_limit(self):
        m = FDMaterial("flat", 0.3, ())
        assert m.beta_eff == 0.3

    def test_as_fi(self):
        fi = self._mat().as_fi()
        assert isinstance(fi, FIMaterial)
        assert fi.beta == pytest.approx(self._mat().beta_eff)

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            FDMaterial("bad", -0.1)

    def test_admittance_positive_real_part(self):
        """Passive material: Re Y(ω) >= 0 for all real frequencies."""
        m = self._mat()
        w = np.linspace(1e-3, math.pi, 300)
        assert (m.admittance(w).real >= -1e-12).all()

    def test_absorption_in_unit_interval(self):
        m = self._mat()
        w = np.linspace(1e-3, math.pi, 300)
        a = m.absorption_coefficient(w)
        assert (a >= -1e-9).all() and (a <= 1.0 + 1e-9).all()

    def test_absorption_peaks_near_resonance(self):
        dt = 1.0 / 44100.0
        m = FDMaterial("peaky", 0.001,
                       (Branch.from_resonance(1000.0, 0.3, 0.5, dt),))
        w = np.linspace(1e-3, math.pi / 4, 2000)
        a = m.absorption_coefficient(w)
        w_peak = w[np.argmax(a)]
        w0 = 2 * math.pi * 1000.0 * dt
        assert abs(w_peak - w0) / w0 < 0.25

    def test_rigid_reflects_everything(self):
        m = FDMaterial("rigid", 0.0, ())
        w = np.linspace(1e-3, math.pi, 50)
        np.testing.assert_allclose(np.abs(m.reflection_coefficient(w)), 1.0)

    def test_database_fd_materials(self):
        m = material_by_name("fd_curtain")
        assert isinstance(m, FDMaterial)
        assert len(m.branches) == 3


class TestMaterialTable:
    def test_from_fi(self):
        t = MaterialTable.from_fi(default_fi_materials(3))
        assert t.num_materials == 3
        assert t.num_branches == 0

    def test_from_fd_shapes(self):
        t = MaterialTable.from_fd(default_fd_materials(4), num_branches=3)
        assert t.beta.shape == (4,)
        assert t.BI.shape == (4, 3)
        assert t.DI.shape == t.F.shape == t.D.shape == (4, 3)

    def test_beta_is_beta_eff(self):
        mats = default_fd_materials(2)
        t = MaterialTable.from_fd(mats)
        for i, m in enumerate(mats):
            assert t.beta[i] == pytest.approx(m.beta_eff)

    def test_padding_is_inert(self):
        """Materials with fewer branches pad with zero rows (exact no-ops)."""
        mats = [FDMaterial("one", 0.1, (Branch(1.0, 0.5, 2.0),))]
        t = MaterialTable.from_fd(mats, num_branches=3)
        assert (t.BI[0, 1:] == 0).all()
        assert (t.F[0, 1:] == 0).all()

    def test_too_many_branches_rejected(self):
        mats = [FDMaterial("m", 0.1, (Branch(1, 0, 1), Branch(1, 0, 2)))]
        with pytest.raises(ValueError):
            MaterialTable.from_fd(mats, num_branches=1)

    def test_astype(self):
        t = MaterialTable.from_fd(default_fd_materials(2)).astype(np.float32)
        assert t.beta.dtype == np.float32
        assert t.BI.dtype == np.float32

    def test_dtype_at_construction(self):
        t = MaterialTable.from_fd(default_fd_materials(2), dtype=np.float32)
        assert t.beta.dtype == np.float32
