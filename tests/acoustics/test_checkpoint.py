"""Checkpoint/restart and the numerical-health monitor."""

import numpy as np
import pytest

from repro.acoustics import RoomSimulation, SimConfig
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.materials import (default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.sim import Checkpoint, SimulationDiverged


def make_sim(scheme="fi_mm", backend="numpy", **cfg):
    mats = (default_fd_materials(4) if scheme == "fd_mm"
            else default_fi_materials(4))
    sim = RoomSimulation(SimConfig(room=Room(Grid3D(12, 10, 9), DomeRoom()),
                                   scheme=scheme, backend=backend,
                                   materials=mats, **cfg))
    sim.add_impulse("center")
    sim.add_receiver("mic", "center")
    return sim


class TestCheckpointRestart:
    @pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
    def test_resume_is_bit_identical(self, scheme):
        steps, cut = 12, 7
        ref = make_sim(scheme)
        ref.run(steps)

        first = make_sim(scheme)
        first.run(cut)
        cp = first.checkpoint()

        resumed = make_sim(scheme)
        resumed.restore(cp)
        assert resumed.time_step == cut
        resumed.run(steps - cut)

        np.testing.assert_array_equal(resumed.curr, ref.curr)
        np.testing.assert_array_equal(resumed.prev, ref.prev)
        np.testing.assert_array_equal(resumed.g1, ref.g1)
        np.testing.assert_array_equal(resumed.v1, ref.v1)
        np.testing.assert_array_equal(resumed.receiver_signal("mic"),
                                      ref.receiver_signal("mic"))

    @pytest.mark.parametrize("scheme", ["fi_mm", "fd_mm"])
    def test_resume_virtual_gpu_backend(self, scheme):
        steps, cut = 8, 5
        ref = make_sim(scheme, backend="virtual_gpu")
        ref.run(steps)
        first = make_sim(scheme, backend="virtual_gpu")
        first.run(cut)
        resumed = make_sim(scheme, backend="virtual_gpu")
        resumed.restore(first.checkpoint())
        resumed.run(steps - cut)
        np.testing.assert_array_equal(resumed.curr, ref.curr)
        # modelled time also resumes, so profiling stays comparable
        assert resumed.modelled_gpu_time_ms == pytest.approx(
            ref.modelled_gpu_time_ms)

    def test_periodic_checkpoints_during_run(self):
        sim = make_sim(checkpoint_interval=4)
        sim.run(10)
        assert sim.last_checkpoint is not None
        assert sim.last_checkpoint.time_step == 8

    def test_npz_roundtrip(self, tmp_path):
        path = tmp_path / "cp.npz"
        sim = make_sim("fd_mm")
        sim.run(6)
        sim.save_checkpoint(path)

        ref = make_sim("fd_mm")
        ref.run(11)

        resumed = make_sim("fd_mm")
        resumed.load_checkpoint(path)
        resumed.run(5)
        np.testing.assert_array_equal(resumed.curr, ref.curr)
        np.testing.assert_array_equal(resumed.g1, ref.g1)
        np.testing.assert_array_equal(resumed.receiver_signal("mic"),
                                      ref.receiver_signal("mic"))

    def test_mismatched_checkpoint_refused(self):
        cp = make_sim("fi_mm").checkpoint()
        other = make_sim("fd_mm")
        with pytest.raises(ValueError, match="checkpoint mismatch"):
            other.restore(cp)

    def test_unsupported_version_refused(self, tmp_path):
        path = tmp_path / "cp.npz"
        sim = make_sim()
        sim.save_checkpoint(path)
        import json
        with np.load(path) as z:
            data = {k: z[k] for k in z.files}
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            Checkpoint.load(path)


class TestAtomicSave:
    def test_interrupted_save_leaves_old_checkpoint_intact(self, tmp_path,
                                                           monkeypatch):
        path = tmp_path / "cp.npz"
        sim = make_sim()
        sim.run(4)
        sim.save_checkpoint(path)
        good = path.read_bytes()

        sim.run(3)
        killed = make_sim()
        killed.run(2)

        def die_mid_write(f, **arrays):
            f.write(b"half a checkpoint")
            raise KeyboardInterrupt("power cut mid-save")

        monkeypatch.setattr(np, "savez", die_mid_write)
        with pytest.raises(KeyboardInterrupt):
            sim.checkpoint().save(path)
        # the torn write never reached the checkpoint's real name ...
        assert path.read_bytes() == good
        # ... no tmp litter survives the interrupt ...
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cp.npz"]
        # ... and the old checkpoint still restores
        monkeypatch.undo()
        resumed = make_sim()
        resumed.load_checkpoint(path)
        assert resumed.time_step == 4

    def test_save_appends_npz_suffix_like_np_savez(self, tmp_path):
        sim = make_sim()
        sim.run(2)
        sim.save_checkpoint(tmp_path / "bare")        # no suffix given
        assert (tmp_path / "bare.npz").exists()
        resumed = make_sim()
        resumed.load_checkpoint(tmp_path / "bare.npz")
        assert resumed.time_step == 2

    def test_on_checkpoint_hook_fires_per_boundary(self):
        seen = []
        sim = make_sim(checkpoint_interval=3,
                       on_checkpoint=lambda cp: seen.append(cp.time_step))
        sim.run(10)
        assert seen == [3, 6, 9]

    def test_on_checkpoint_exception_propagates(self):
        class Die(Exception):
            pass

        def hook(cp):
            raise Die(f"at step {cp.time_step}")

        sim = make_sim(checkpoint_interval=2, on_checkpoint=hook)
        with pytest.raises(Die, match="at step 2"):
            sim.run(6)
        # the checkpoint was taken before the hook ran: a supervisor
        # can resume from exactly where the "crash" hit
        assert sim.last_checkpoint.time_step == 2


class TestHealthMonitor:
    def test_nan_detected_with_last_good_checkpoint(self):
        sim = make_sim(checkpoint_interval=2, health_interval=1)
        sim.run(4)
        sim.curr[sim.point_index("center")] = np.nan
        with pytest.raises(SimulationDiverged) as ei:
            sim.run(3)
        assert "non-finite" in ei.value.reason
        assert ei.value.checkpoint is not None
        assert ei.value.checkpoint.time_step == 4
        # the checkpoint it hands back really is restartable
        fresh = make_sim()
        fresh.restore(ei.value.checkpoint)
        fresh.run(2)
        assert np.isfinite(fresh.curr).all()

    def test_energy_growth_detected(self):
        # a threshold below 1 treats steady energy as runaway: the monitor
        # trips at the second reading (the first sets the reference)
        sim = make_sim(health_interval=1, energy_growth_factor=0.5)
        with pytest.raises(SimulationDiverged, match="energy"):
            sim.run(4)

    def test_healthy_run_passes_monitoring(self):
        sim = make_sim(health_interval=1, checkpoint_interval=3)
        ref = make_sim()
        sim.run(10)
        ref.run(10)
        np.testing.assert_array_equal(sim.curr, ref.curr)

    def test_monitoring_off_by_default(self):
        sim = make_sim()
        sim.curr[sim.point_index("center")] = np.nan
        sim.run(2)          # no monitor, no exception
        assert sim.last_checkpoint is None
