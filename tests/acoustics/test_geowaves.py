"""Tests for the §VIII extension: 2-D GPR electromagnetics in LIFT."""

import numpy as np
import pytest

from repro.geowaves import (GPRSimulation, GprConfig,
                            permittivity_half_space)
from repro.geowaves.fdtd2d import courant_limit_2d, sponge_profile
from repro.geowaves.lift_programs import e_update_program, h_update_program
from repro.lift.codegen.opencl import compile_kernel
from repro.lift.memory import allocate
from repro.lift.analysis import analyse_kernel


class TestConfig:
    def test_rejects_unstable_courant(self):
        with pytest.raises(ValueError):
            GprConfig(courant=0.9)

    def test_limit(self):
        assert courant_limit_2d() == pytest.approx(2 ** -0.5)

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            GprConfig(backend="cuda")

    def test_rejects_wrong_eps_shape(self):
        with pytest.raises(ValueError):
            GPRSimulation(GprConfig(nx=10, ny=10,
                                    eps_r=np.ones((5, 5))))

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(ValueError):
            GPRSimulation(GprConfig(nx=10, ny=10,
                                    eps_r=np.zeros((10, 10))))

    def test_source_outside(self):
        sim = GPRSimulation(GprConfig(nx=10, ny=10))
        with pytest.raises(ValueError):
            sim.add_source(99, 0)


class TestBackendParity:
    def test_all_backends_agree(self):
        eps = permittivity_half_space(32, 28)
        fields = {}
        for backend in ("numpy", "scalar", "lift"):
            sim = GPRSimulation(GprConfig(nx=32, ny=28, eps_r=eps,
                                          backend=backend))
            sim.add_source(16, 6)
            sim.run(8)
            fields[backend] = (sim.ez[:sim.n].copy(),
                               sim.hx[:sim.n].copy(),
                               sim.hy[:sim.n].copy())
        for b in ("scalar", "lift"):
            for ref, got in zip(fields["numpy"], fields[b]):
                np.testing.assert_array_equal(got, ref)


class TestPhysics:
    def test_sponge_absorbs(self):
        sim = GPRSimulation(GprConfig(nx=40, ny=36))
        sim.add_source(20, 18)
        sim.run(2)
        e0 = sim.field_energy()
        sim.run(400)
        assert sim.field_energy() < 0.2 * e0

    def test_without_sponge_energy_survives_longer(self):
        def final_energy(width):
            sim = GPRSimulation(GprConfig(nx=40, ny=36, sponge_width=width))
            sim.add_source(20, 18)
            sim.run(200)
            return sim.field_energy()
        assert final_energy(1) > final_energy(12)

    def test_wave_slower_in_dielectric(self):
        """In εᵣ = 4 the phase velocity halves: the wavefront reaches a
        probe later than in free space."""
        def arrival(eps_val):
            eps = np.full((60, 24), eps_val)
            sim = GPRSimulation(GprConfig(nx=24, ny=60, eps_r=eps,
                                          sponge_width=2))
            sim.add_source(12, 5)
            sim.add_receiver("p", 12, 45)
            sim.run(160)
            sig = np.abs(sim.receiver_signal("p"))
            thresh = 0.05 * sig.max()
            return int(np.argmax(sig > thresh))
        assert arrival(4.0) > 1.5 * arrival(1.0)

    def test_interface_reflects(self):
        """A buried dielectric interface returns energy to the surface."""
        nx, ny = 48, 60
        def surface_trace(eps):
            sim = GPRSimulation(GprConfig(nx=nx, ny=ny, eps_r=eps,
                                          backend="numpy"))
            sim.add_source(nx // 2, 6)
            sim.add_receiver("rx", nx // 2 + 4, 6)
            sim.run(150)
            return sim.receiver_signal("rx")
        uniform = surface_trace(np.ones((ny, nx)))
        layered = surface_trace(permittivity_half_space(nx, ny, 0.5,
                                                        1.0, 9.0))
        # the late-time difference is the interface reflection
        late = slice(60, 150)
        assert np.abs(layered[late] - uniform[late]).max() \
            > 10 * np.abs(uniform[late]).max() * 0 + 1e-6

    def test_edges_stay_untouched(self):
        sim = GPRSimulation(GprConfig(nx=30, ny=26))
        sim.add_source(15, 13)
        sim.run(40)
        ez = sim.ez_snapshot()
        assert (ez[0, :] == 0).all() and (ez[-1, :] == 0).all()
        assert (ez[:, 0] == 0).all() and (ez[:, -1] == 0).all()

    def test_receiver_and_counters(self):
        sim = GPRSimulation(GprConfig(nx=20, ny=20))
        sim.add_source(10, 10)
        sim.add_receiver("r", 12, 10)
        sim.run(7)
        assert sim.time_step == 7
        assert sim.receiver_signal("r").shape == (7,)


class TestSponge:
    def test_profile_bounds(self):
        p = sponge_profile(30, 20, width=5, strength=0.1)
        assert p.max() <= 1.0
        # corners combine both ramps: (1 - strength)^2 at worst
        assert p.min() >= (1 - 0.1) ** 2 - 1e-12
        assert p[10, 15] == 1.0  # interior untouched

    def test_profile_symmetry(self):
        p = sponge_profile(31, 21)
        np.testing.assert_allclose(p, p[::-1, :])
        np.testing.assert_allclose(p, p[:, ::-1])


class TestLiftPrograms:
    def test_h_kernel_aliases_two_arrays(self):
        alloc = allocate(h_update_program().kernel)
        assert not alloc.allocates_output
        assert {o.aliased_param.name for o in alloc.outputs} == {"Hx", "Hy"}

    def test_e_kernel_aliases_ez(self):
        alloc = allocate(e_update_program().kernel)
        assert not alloc.allocates_output
        assert {o.aliased_param.name for o in alloc.outputs} == {"Ez"}

    def test_opencl_generates(self):
        src = compile_kernel(h_update_program().kernel, "gpr_h").source
        assert "Hx[" in src and "Hy[" in src
        assert "__global double* out" not in src

    def test_resources_counted(self):
        r = analyse_kernel(h_update_program().kernel)
        assert r.stores == 2      # two in-place arrays per work item
        assert r.loads >= 4       # mask, Ez centre + 2 neighbours, Hx, Hy

    def test_e_kernel_resources(self):
        r = analyse_kernel(e_update_program().kernel)
        assert r.stores == 1
        assert not r.divergent    # masked with select, no memory divergence
