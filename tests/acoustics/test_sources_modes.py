"""Tests for excitation signals and a modal-frequency validation.

The mode test is the strongest physics check in the suite: the lowest
axial mode of a rigid box room must appear at the frequency predicted by
the *discrete* dispersion relation of the SLF scheme.
"""

import math

import numpy as np
import pytest

from repro.acoustics import (BoxRoom, Grid3D, Room, RoomSimulation,
                             SimConfig)
from repro.acoustics.materials import FIMaterial
from repro.acoustics.sources import (SignalSource, attach_source,
                                     gaussian_pulse, ricker_wavelet,
                                     signal_samples, tone_burst)


class TestSignals:
    def test_gaussian_peak_at_delay(self):
        s = signal_samples(gaussian_pulse(5.0, delay_steps=30.0), 100)
        assert np.argmax(s) == 30
        assert s.max() == pytest.approx(1.0)

    def test_gaussian_default_delay(self):
        s = signal_samples(gaussian_pulse(5.0), 100)
        assert np.argmax(s) == 20  # 4 sigma

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            gaussian_pulse(0.0)

    def test_ricker_zero_mean(self):
        s = signal_samples(ricker_wavelet(60.0, 8.0), 200)
        assert abs(s.sum()) < 1e-6 * np.abs(s).sum()

    def test_ricker_peak(self):
        s = signal_samples(ricker_wavelet(60.0, 8.0), 200)
        assert np.argmax(s) == 60

    def test_tone_burst_windowed(self):
        dt = 1e-4
        s = signal_samples(tone_burst(500.0, dt, cycles=4), 200)
        total = int(4 / (500.0 * dt))
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert abs(s[total - 1]) < 0.1
        assert np.abs(s).max() > 0.5

    def test_tone_burst_validation(self):
        with pytest.raises(ValueError):
            tone_burst(-1.0, 1e-4)

    def test_signal_source_inject(self):
        state = np.zeros(10)
        src = SignalSource(index=3, signal=lambda n: float(n), amplitude=2.0)
        src.inject(state, 5)
        assert state[3] == 10.0


class TestAttachedSource:
    def test_source_drives_simulation(self):
        room = Room(Grid3D(16, 14, 12), BoxRoom())
        sim = RoomSimulation(SimConfig(room=room, scheme="fi_mm"))
        attach_source(sim, ricker_wavelet(20.0, 5.0), "center")
        sim.run(60)
        assert np.abs(sim.curr[:sim._N]).max() > 0

    def test_ricker_avoids_dc_growth(self):
        """The zero-mean wavelet must not excite the secular DC mode that a
        bare impulse does (rigid box)."""
        from repro.acoustics.analysis import total_field_energy
        room = Room(Grid3D(16, 14, 12), BoxRoom())
        sim = RoomSimulation(SimConfig(room=room, scheme="fi",
                                       materials=[FIMaterial("rigid", 0.0)]))
        attach_source(sim, ricker_wavelet(20.0, 5.0), "center")
        sim.run(80)  # source has fully played out
        e0 = total_field_energy(sim)
        sim.run(300)
        assert total_field_energy(sim) < 2.5 * e0  # bounded, no secular growth


class TestAxialMode:
    def test_lowest_axial_mode_frequency(self):
        """Drive a rigid box broadband and locate the lowest x-axial mode.

        For the SLF scheme at Courant number λ, a plane wave along an axis
        obeys sin(ω·dt/2) = λ·sin(k·h/2).  The lowest axial mode has
        k = π/Lx (pressure antinodes at rigid walls, Lx the interior
        length), so f = arcsin(λ·sin(k·h/2))/(π·dt).
        """
        nx, ny, nz = 64, 12, 12
        grid = Grid3D(nx, ny, nz, spacing=0.05)
        room = Room(grid, BoxRoom())
        sim = RoomSimulation(SimConfig(room=room, scheme="fi",
                                       materials=[FIMaterial("hard", 1e-4)]))
        # off-centre source and receiver so the axial mode is excited/seen
        attach_source(sim, ricker_wavelet(25.0, 6.0), (5, ny // 2, nz // 2))
        sim.add_receiver("mic", (nx - 6, ny // 2, nz // 2))
        steps = 4096
        sim.run(steps)
        sig = sim.receiver_signal("mic") - np.mean(sim.receiver_signal("mic"))
        spectrum = np.abs(np.fft.rfft(sig * np.hanning(steps)))
        freqs = np.fft.rfftfreq(steps, d=grid.dt)

        lx = (nx - 2) * grid.spacing          # interior length
        k = math.pi / lx
        arg = grid.courant * math.sin(k * grid.spacing / 2.0)
        f_expected = math.asin(arg) / (math.pi * grid.dt)

        # find the strongest peak below 1.5x the expected mode
        band = freqs < 1.5 * f_expected
        f_peak = freqs[band][np.argmax(spectrum[band][1:]) + 1]
        assert f_peak == pytest.approx(f_expected, rel=0.08)
