"""Crash recovery: journal replay, store-first serving, checkpoint resume."""

import os

import numpy as np
import pytest

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.api import Session
from repro.gpu import FaultPlan, FaultSpec
from repro.serve import (QueueFull, SimulationService, SubmitRequest,
                         WorkerCrash)


def _req(steps=4, priority=0, dims=(10, 8, 8), **kw):
    kw.setdefault("receivers", {"mic": "center"})
    return SubmitRequest(room=Room(Grid3D(*dims), BoxRoom()), steps=steps,
                         priority=priority, **kw)


def _serial(req):
    return Session(devices="TitanBlack").simulate(
        req.room, req.steps, scheme=req.scheme, precision=req.precision,
        receivers=dict(req.receiver_items()))


def test_completed_jobs_recover_from_store_without_reexecution(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    reqs = [_req(steps=3), _req(steps=5)]
    handles = [svc.submit(r) for r in reqs]
    svc.drain()
    assert all(h.state == "DONE" for h in handles)
    assert svc.executions == 2
    svc.close()

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    # acceptance: nothing re-executes; the store answers
    assert back.executions == 0
    assert len(back.recovery["from_store"]) == 2
    assert back.store.hits == 2
    assert len(back._handles) == 2
    for h, req in zip(back._handles, reqs):
        assert h.state == "DONE"
        res = h.result()
        assert res.from_store
        ref = _serial(req)
        assert np.array_equal(res.field, ref.field)
        assert np.array_equal(res.receivers["mic"], ref.receivers["mic"])
    back.close()


def test_inflight_jobs_requeue_and_finish_bit_identical(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    req = _req(steps=4)
    svc.submit(req)                     # journalled, never drained
    svc.close()

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    assert back.recovery["requeued"] == [req.fingerprint()]
    [h] = back._handles
    res = h.result()                    # drains
    assert back.executions == 1
    assert np.array_equal(res.field, _serial(req).field)
    back.close()


def test_worker_crash_resumes_from_checkpoint_bit_identical(tmp_path):
    plan = FaultPlan([FaultSpec("worker_crash", steps=(2,))], seed=1)
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path,
                            checkpoint_every=2, faults=plan)
    req = _req(steps=5)
    svc.submit(req)
    with pytest.raises(WorkerCrash):
        svc.drain()
    assert os.path.exists(os.path.join(
        tmp_path, "checkpoints", f"{req.fingerprint()}.npz"))
    svc.close()

    # same plan object: the boundary-2 crash already fired, so the
    # resumed run sails past it — like a real one-off machine death
    back = SimulationService.recover(tmp_path, devices="TitanBlack",
                                     checkpoint_every=2, faults=plan)
    assert back.recovery["resumed"] == [req.fingerprint()]
    [h] = back._handles
    res = h.result()
    assert res.time_step == req.steps
    ref = _serial(req)
    assert np.array_equal(res.field, ref.field)
    assert np.array_equal(res.receivers["mic"], ref.receivers["mic"])
    # the resumed execution ran only the remaining steps, then dropped
    # its checkpoint
    assert back.executions == 1
    assert not os.path.exists(os.path.join(
        tmp_path, "checkpoints", f"{req.fingerprint()}.npz"))
    back.close()


def test_recover_twice_is_idempotent(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    handles = [svc.submit(_req(steps=3)), svc.submit(_req(steps=5))]
    svc.drain()
    svc.close()

    once = SimulationService.recover(tmp_path, devices="TitanBlack")
    once.drain()
    once.close()
    twice = SimulationService.recover(tmp_path, devices="TitanBlack")
    twice.drain()
    assert twice.executions == once.executions == 0
    assert (sorted(twice.recovery["from_store"])
            == sorted(once.recovery["from_store"]))
    assert [h.state for h in twice._handles] == ["DONE"] * len(handles)
    twice.close()


def test_duplicate_submits_dedup_by_fingerprint_on_recovery(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    req = _req(steps=4)
    svc.submit(req)
    svc.submit(_req(steps=4, priority=9))   # same fingerprint (priority
    svc.close()                             # is a scheduling knob)

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    assert back.recovery["deduped"] == 1
    assert len(back._handles) == 2          # both clients get an answer
    results = [h.result() for h in back._handles]
    assert back.executions == 1             # ... from one execution
    assert np.array_equal(results[0].field, results[1].field)
    back.close()


def test_cancelled_jobs_stay_terminal_after_recovery(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    keep = svc.submit(_req(steps=3))
    gone = svc.submit(_req(steps=7))
    assert gone.cancel()
    svc.drain()
    assert keep.state == "DONE" and gone.state == "EVICTED"
    svc.close()

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    back.drain()
    assert back.executions == 0
    assert [h.state for h in back._handles] == ["DONE", "EVICTED"]
    assert back.recovery["terminal"] == [gone.request.fingerprint()]
    assert "cancelled" in back._handles[1].error
    back.close()


def test_queue_full_leaves_no_durable_trace(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path,
                            max_queue=1)
    svc.submit(_req(steps=3))
    with pytest.raises(QueueFull):
        svc.submit(_req(steps=9))
    svc.close()

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    assert len(back._handles) == 1          # the refused job was never real
    back.close()


def test_lost_store_entry_downgrades_to_reexecution(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    req = _req(steps=4)
    svc.submit(req).result()
    svc.close()
    os.remove(os.path.join(tmp_path, "store", f"{req.fingerprint()}.res"))

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    assert back.recovery["requeued"] == [req.fingerprint()]
    res = back._handles[0].result()
    assert back.executions == 1             # honest re-run, right answer
    assert np.array_equal(res.field, _serial(req).field)
    back.close()


def test_durable_stats_and_metrics(tmp_path):
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path,
                            observability=True)
    svc.submit(_req(steps=3)).result()
    svc.close()
    back = SimulationService.recover(tmp_path, devices="TitanBlack",
                                     observability=True)
    d = back.stats()["durability"]
    assert d["executions"] == 0
    assert d["recovered"]["from_store"] == 1
    assert d["store"]["hits"] == 1
    from repro.obs import prometheus_text
    text = prometheus_text(back.obs.metrics)
    assert 'repro_serve_recovered_jobs_total{mode="from_store"} 1' in text
    assert "repro_store_hit_total 1" in text
    back.close()
    # the original service exported journal bytes
    assert "repro_journal_bytes_total" in prometheus_text(svc.obs.metrics)


def test_session_service_durable_passthrough(tmp_path):
    session = Session(devices="TitanBlack")
    svc = session.service(durable_dir=tmp_path, checkpoint_every=2,
                          store_max_bytes=1 << 20)
    assert svc.durable_dir == str(tmp_path)
    assert svc.checkpoint_every == 2
    assert svc.store.max_bytes == 1 << 20
    req = _req(steps=4)
    res = svc.submit(req).result()
    assert np.array_equal(res.field, session.simulate(
        req.room, req.steps, receivers=dict(req.receiver_items())).field)
    svc.close()
