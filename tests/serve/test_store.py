"""On-disk result store: atomic writes, corruption detection, LRU."""

import os

import numpy as np
import pytest

from repro.gpu import FaultPlan, FaultSpec
from repro.serve import JobResult, ResultStore


def _result(seed=0, n=64):
    rng = np.random.default_rng(seed)
    return JobResult(
        field=rng.standard_normal(n), time_step=5, scheme="fi_mm",
        precision="double", devices=("TitanBlack",), kernel_time_ms=1.25,
        halo_time_ms=0.5,
        receivers={"mic": rng.standard_normal(5), "far": rng.standard_normal(5)},
        attempts=2)


def test_put_get_roundtrip_bit_identical(tmp_path):
    store = ResultStore(tmp_path)
    res = _result()
    assert store.put("a" * 40, res)
    back = store.get("a" * 40)
    assert back.from_store and not back.from_cache
    assert np.array_equal(back.field, res.field)
    assert back.field.dtype == res.field.dtype
    assert sorted(back.receivers) == sorted(res.receivers)
    for name in res.receivers:
        assert np.array_equal(back.receivers[name], res.receivers[name])
    assert (back.time_step, back.scheme, back.precision, back.devices,
            back.attempts) == (5, "fi_mm", "double", ("TitanBlack",), 2)
    assert store.hits == 1 and store.misses == 0


def test_miss_and_reopen_reindexes(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("b" * 40) is None
    assert store.misses == 1
    store.put("a" * 40, _result())
    # a fresh instance over the same root sees the entry
    again = ResultStore(tmp_path)
    assert len(again) == 1 and "a" * 40 in again
    assert again.get("a" * 40) is not None


def test_corrupt_entry_detected_and_dropped(tmp_path):
    store = ResultStore(tmp_path)
    fp = "c" * 40
    store.put(fp, _result())
    path = os.path.join(str(tmp_path), f"{fp}.res")
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF              # silent bit rot
    open(path, "wb").write(bytes(blob))
    assert store.get(fp) is None              # detected, not served
    assert store.corrupt == 1
    assert not os.path.exists(path)           # entry removed -> re-execute
    assert store.get(fp) is None and store.misses == 1


def test_store_corrupt_fault_is_caught_by_read_path(tmp_path):
    plan = FaultPlan([FaultSpec("store_corrupt", steps=(0,))], seed=5)
    store = ResultStore(tmp_path, faults=plan)
    assert store.put("d" * 40, _result())     # write "succeeds"
    assert store.get("d" * 40) is None        # CRC catches the flip
    assert store.corrupt == 1


def test_disk_full_fault_skips_write(tmp_path):
    plan = FaultPlan([FaultSpec("disk_full", steps=(0,))], seed=5)
    store = ResultStore(tmp_path, faults=plan)
    assert not store.put("e" * 40, _result())
    assert store.disk_full_skips == 1 and len(store) == 0
    assert store.put("e" * 40, _result())     # transient: retry lands


def test_lru_byte_budget_evicts_oldest(tmp_path):
    store = ResultStore(tmp_path, max_bytes=1)   # every put over budget
    store.put("a" * 40, _result(seed=1))
    store.put("b" * 40, _result(seed=2))
    # the entry just written is never the victim
    assert len(store) == 1 and "b" * 40 in store
    assert store.evictions == 1
    assert store.get("a" * 40) is None


def test_lru_recency_protects_hot_entries(tmp_path):
    big = ResultStore(tmp_path, max_bytes=10**9)
    big.put("a" * 40, _result(seed=1))
    big.put("b" * 40, _result(seed=2))
    entry_bytes = sum(big._entries.values()) // 2
    store = ResultStore(tmp_path, max_bytes=int(entry_bytes * 2.5))
    store.get("a" * 40)                        # touch a: now most-recent
    store.put("c" * 40, _result(seed=3))       # must evict b, not a
    assert "a" * 40 in store and "c" * 40 in store
    assert "b" * 40 not in store


def test_no_tmp_litter_after_puts(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(4):
        store.put(f"{i:040d}", _result(seed=i))
    assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]


def test_stats_shape(tmp_path):
    store = ResultStore(tmp_path, max_bytes=1 << 20)
    store.put("a" * 40, _result())
    store.get("a" * 40)
    s = store.stats()
    assert s["entries"] == 1 and s["hits"] == 1
    assert s["bytes"] > 0 and s["max_bytes"] == 1 << 20


def test_bad_max_bytes_rejected(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        ResultStore(tmp_path, max_bytes=0)
