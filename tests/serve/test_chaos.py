"""The chaos harness: kill-and-recover soak with bit-identity verify."""

import json
import subprocess
import sys

import pytest

from repro.serve.chaos import build_workload, chaos_plan, run_chaos


@pytest.fixture(autouse=True)
def _quiet_torn_tail_warnings():
    # torn-tail repair during recovery is the *expected* path here
    import warnings

    from repro.serve import JournalTornWarning
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", JournalTornWarning)
        yield


def test_chaos_soak_survives_and_verifies(tmp_path):
    report = run_chaos(jobs=6, kills=3, steps=8, checkpoint_every=2,
                       pool="TitanBlack:2", seed=7,
                       durable_dir=tmp_path / "d", verify=True)
    assert report["errors"] == []
    assert report["verified"] is True
    assert report["crashes"] >= 3             # the kills actually landed
    assert "worker_crash" in report["injected"]
    assert report["incarnations"] == report["crashes"] + 1


def test_chaos_is_deterministic_in_seed(tmp_path):
    a = run_chaos(jobs=5, kills=2, steps=6, checkpoint_every=3, seed=11,
                  durable_dir=tmp_path / "a")
    b = run_chaos(jobs=5, kills=2, steps=6, checkpoint_every=3, seed=11,
                  durable_dir=tmp_path / "b")
    assert a["errors"] == b["errors"] == []
    assert a["crashes"] == b["crashes"]
    assert a["deaths"] == b["deaths"]
    assert a["injected"] == b["injected"]
    assert a["final"]["recovered"] == b["final"]["recovered"]


def test_workload_has_duplicate_fingerprints():
    reqs = build_workload(8, steps=6)
    fps = [r.fingerprint() for r in reqs]
    # rows 1/5 are verbatim duplicates; rows 2/6 differ only in the
    # priority scheduling knob, which the fingerprint excludes
    assert fps[1] == fps[5]
    assert fps[2] == fps[6]
    assert len(set(fps)) == 6


def test_plan_schedules_crashes_at_checkpoint_boundaries():
    plan = chaos_plan(kills=4, steps=12, checkpoint_every=3, seed=0)
    spec = plan.specs["worker_crash"]
    assert spec.steps == (3, 6, 9, 12)
    assert spec.max_count == 4


def test_chaos_cli_end_to_end(tmp_path):
    out = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve", "chaos", "--jobs", "4",
         "--kills", "2", "--steps", "6", "--checkpoint-every", "3",
         "--seed", "7", "--verify", "--dir", str(tmp_path / "d"),
         "--json", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert report["verified"] is True and report["errors"] == []
    assert "verified: all survivors bit-identical" in proc.stdout


def test_chaos_artifacts_stitch_trace_and_dump_flight(tmp_path):
    from repro.obs import validate_chrome_trace, validate_dashboard

    trace = tmp_path / "trace.json"
    flight = tmp_path / "flight.json"
    dash = tmp_path / "dash.json"
    report = run_chaos(jobs=6, kills=2, steps=8, checkpoint_every=2,
                       pool="TitanBlack:2", seed=7,
                       durable_dir=tmp_path / "d", verify=True,
                       trace_path=trace, flight_path=flight,
                       dashboard_path=dash)
    assert report["verified"] is True
    assert set(report["artifacts"]) == {"trace", "flight", "dashboard"}

    # -- stitched trace: one valid document spanning every incarnation
    doc = json.loads(trace.read_text())
    assert validate_chrome_trace(doc) == []
    lanes = {}
    for e in doc["traceEvents"]:
        if e.get("ph") == "X" and "trace_id" in e.get("args", {}):
            lanes.setdefault(e["args"]["trace_id"], set()).add(
                e["args"]["incarnation"])
    # at least one job was in flight across a kill: its single trace id
    # collects spans from more than one incarnation
    assert any(len(incs) > 1 for incs in lanes.values()), lanes
    # each trace renders as exactly one lane even across incarnations
    tids = {}
    for e in doc["traceEvents"]:
        if e.get("ph") == "X" and e.get("cat") == "job":
            tids.setdefault(e["args"]["trace_id"], set()).add(e["tid"])
    assert all(len(ts) == 1 for ts in tids.values()), tids

    # -- flight recorder: one black box per incarnation, with reasons
    boxes = json.loads(flight.read_text())["incarnations"]
    assert len(boxes) == report["incarnations"]
    assert all(b["events"] for b in boxes)
    assert boxes[-1]["reason"] == "final incarnation"
    assert all(b["reason"] for b in boxes[:-1])

    # -- dashboard snapshot of the final incarnation
    assert validate_dashboard(json.loads(dash.read_text())) == []


def test_chaos_crash_dumps_black_box_in_durable_dir(tmp_path):
    report = run_chaos(jobs=4, kills=1, steps=6, checkpoint_every=3,
                       seed=7, durable_dir=tmp_path / "d")
    assert report["crashes"] >= 1
    dump = json.loads((tmp_path / "d" / "flight-recorder.json").read_text())
    assert dump["events"]
    assert "incarnation_end" in {e["kind"] for e in dump["events"]} or \
        "crash" in {e["kind"] for e in dump["events"]}
