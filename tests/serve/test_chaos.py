"""The chaos harness: kill-and-recover soak with bit-identity verify."""

import json
import subprocess
import sys

import pytest

from repro.serve.chaos import build_workload, chaos_plan, run_chaos


@pytest.fixture(autouse=True)
def _quiet_torn_tail_warnings():
    # torn-tail repair during recovery is the *expected* path here
    import warnings

    from repro.serve import JournalTornWarning
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", JournalTornWarning)
        yield


def test_chaos_soak_survives_and_verifies(tmp_path):
    report = run_chaos(jobs=6, kills=3, steps=8, checkpoint_every=2,
                       pool="TitanBlack:2", seed=7,
                       durable_dir=tmp_path / "d", verify=True)
    assert report["errors"] == []
    assert report["verified"] is True
    assert report["crashes"] >= 3             # the kills actually landed
    assert "worker_crash" in report["injected"]
    assert report["incarnations"] == report["crashes"] + 1


def test_chaos_is_deterministic_in_seed(tmp_path):
    a = run_chaos(jobs=5, kills=2, steps=6, checkpoint_every=3, seed=11,
                  durable_dir=tmp_path / "a")
    b = run_chaos(jobs=5, kills=2, steps=6, checkpoint_every=3, seed=11,
                  durable_dir=tmp_path / "b")
    assert a["errors"] == b["errors"] == []
    assert a["crashes"] == b["crashes"]
    assert a["deaths"] == b["deaths"]
    assert a["injected"] == b["injected"]
    assert a["final"]["recovered"] == b["final"]["recovered"]


def test_workload_has_duplicate_fingerprints():
    reqs = build_workload(8, steps=6)
    fps = [r.fingerprint() for r in reqs]
    # rows 1/5 are verbatim duplicates; rows 2/6 differ only in the
    # priority scheduling knob, which the fingerprint excludes
    assert fps[1] == fps[5]
    assert fps[2] == fps[6]
    assert len(set(fps)) == 6


def test_plan_schedules_crashes_at_checkpoint_boundaries():
    plan = chaos_plan(kills=4, steps=12, checkpoint_every=3, seed=0)
    spec = plan.specs["worker_crash"]
    assert spec.steps == (3, 6, 9, 12)
    assert spec.max_count == 4


def test_chaos_cli_end_to_end(tmp_path):
    out = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.serve", "chaos", "--jobs", "4",
         "--kills", "2", "--steps", "6", "--checkpoint-every", "3",
         "--seed", "7", "--verify", "--dir", str(tmp_path / "d"),
         "--json", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(out.read_text())
    assert report["verified"] is True and report["errors"] == []
    assert "verified: all survivors bit-identical" in proc.stdout
