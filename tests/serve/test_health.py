"""SimulationService.health(): the cheap, thread-safe liveness snapshot.

Unlike ``stats()`` it is meant for high-frequency polling from another
thread (the gateway's ``GET /healthz``), so the tests pin both the
shape of the snapshot and that concurrent polling during ``drain()``
never sees torn state.
"""

import threading

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.serve import JOB_STATES, SimulationService, SubmitRequest


def _req(steps=3, dims=(10, 8, 8), **kw):
    return SubmitRequest(room=Room(Grid3D(*dims), BoxRoom()),
                         steps=steps, **kw)


def test_health_shape_when_idle():
    svc = SimulationService(max_queue=7)
    h = svc.health()
    assert h["queue_depth"] == 0
    assert h["queue_capacity"] == 7
    assert set(h["states"]) == set(JOB_STATES)
    assert h["submitted"] == 0
    assert h["lease"]["slots"] >= 1
    assert h["lease"]["occupied"] == 0
    assert h["executions"] == 0
    assert h["durable"] is False
    assert "journal_bytes" not in h
    assert "store_entries" not in h


def test_health_tracks_submit_and_drain():
    svc = SimulationService()
    handles = [svc.submit(_req(steps=3 + i)) for i in range(3)]
    h = svc.health()
    assert h["states"]["QUEUED"] == 3
    assert h["queue_depth"] == 3
    assert h["submitted"] == 3
    svc.drain()
    h = svc.health()
    assert h["states"]["QUEUED"] == 0
    assert h["states"]["DONE"] == 3
    assert h["queue_depth"] == 0
    assert h["submitted"] == 3
    assert h["executions"] >= 1
    assert all(x.state == "DONE" for x in handles)


def test_health_counts_cancellation_and_duplicates():
    svc = SimulationService()
    a = svc.submit(_req(steps=4))
    b = svc.submit(_req(steps=4))            # same fingerprint as a
    c = svc.submit(_req(steps=5))
    assert c.cancel()
    h = svc.health()
    assert h["states"]["EVICTED"] == 1
    assert h["submitted"] == 3
    svc.drain()
    h = svc.health()
    assert h["states"]["DONE"] == 2
    assert h["states"]["EVICTED"] == 1
    assert h["submitted"] == 3
    assert a.state == b.state == "DONE"


def test_health_reports_durability(tmp_path):
    svc = SimulationService(durable_dir=str(tmp_path))
    svc.submit(_req())
    svc.drain()
    h = svc.health()
    assert h["durable"] is True
    assert h["journal_bytes"] > 0
    assert h["store_entries"] == 1
    svc.close()


def test_health_is_safe_to_poll_from_another_thread():
    """Poll health() concurrently with drain(); every snapshot must be
    internally consistent (counts sum to submitted, never negative)."""
    svc = SimulationService()
    for i in range(6):
        svc.submit(_req(steps=3 + i, dims=(10 + i % 3, 8, 8)))
    submitted = 6
    failures = []
    stop = threading.Event()

    def poll():
        while not stop.is_set():
            h = svc.health()
            if sum(h["states"].values()) != submitted:
                failures.append(f"states sum {h['states']}")
            if any(v < 0 for v in h["states"].values()):
                failures.append(f"negative count {h['states']}")
            if h["queue_depth"] > h["queue_capacity"]:
                failures.append("queue depth over capacity")

    poller = threading.Thread(target=poll)
    poller.start()
    try:
        svc.drain()
    finally:
        stop.set()
        poller.join(timeout=10.0)
    assert failures == []
    h = svc.health()
    assert h["states"]["DONE"] == submitted
