"""SimulationService end-to-end: bit-identity, lifecycle, metrics."""

import numpy as np
import pytest

from repro import obs
from repro.acoustics import BoxRoom, DomeRoom, Grid3D, Room
from repro.api import Session
from repro.gpu import FaultPlan, FaultSpec
from repro.serve import (InvalidRequest, JobError, QueueFull,
                         SimulationService, SubmitRequest)

MIX = (
    ("fi", "double", 3, (12, 10, 8)),
    ("fi_mm", "double", 7, (12, 10, 8)),
    ("fd_mm", "double", 1, (10, 10, 8)),
    ("fi_mm", "single", 9, (14, 10, 8)),
    ("fi", "single", 5, (12, 12, 8)),
    ("fd_mm", "double", 8, (10, 10, 8)),      # duplicate of entry 2
    ("fi_mm", "double", 2, (16, 10, 8)),
    ("fi", "double", 6, (14, 12, 8)),
)


def _mixed_requests(steps=5):
    return [SubmitRequest(room=Room(Grid3D(*dims), BoxRoom()), steps=steps,
                          scheme=s, precision=p, priority=prio,
                          receivers={"mic": "center"})
            for s, p, prio, dims in MIX]


def _small(priority=0, **kw):
    kw.setdefault("room", Room(Grid3D(10, 8, 8), BoxRoom()))
    kw.setdefault("steps", 3)
    return SubmitRequest(priority=priority, **kw)


def test_mixed_jobs_bit_identical_to_serial_session():
    """The acceptance scenario: 8 concurrent mixed-scheme jobs over a
    2-shard pool with fault injection, each bit-identical to a serial
    Session.simulate of the same request."""
    faults = FaultPlan([FaultSpec("launch_abort", steps=(1,)),
                        FaultSpec("transfer_fail", rate=0.02)], seed=11)
    svc = SimulationService(devices="TitanBlack:2", resilient=True,
                            faults=faults, observability=True)
    handles = [svc.submit(r) for r in _mixed_requests()]
    svc.drain()
    assert all(h.state == "DONE" for h in handles)
    serial = Session()
    for h in handles:
        req = h.request
        got = h.result()
        ref = serial.simulate(req.room, req.steps, scheme=req.scheme,
                              precision=req.precision,
                              receivers=dict(req.receiver_items()))
        assert got.time_step == ref.time_step == req.steps
        assert np.array_equal(got.field, ref.field)
        assert np.array_equal(got.receivers["mic"], ref.receivers["mic"])
    # repeated shapes hit the compile cache; the duplicate request hits
    # the result cache
    assert svc.compile_cache.hits > 0
    assert svc.result_cache.hits > 0


def test_result_triggers_drain_and_caches_duplicates():
    svc = SimulationService(devices="TitanBlack")
    first = svc.submit(_small())
    r1 = first.result()                   # drives the scheduler
    assert first.state == "DONE" and not r1.from_cache
    dup = svc.submit(_small(priority=5))  # same fingerprint, hits at submit
    assert dup.state == "DONE"
    r2 = dup.result()
    assert r2.from_cache and r2.field is r1.field
    assert r2.wait_ms == 0.0


def test_priority_scheduling_on_single_device():
    svc = SimulationService(devices="TitanBlack", max_batch=1)
    lo = svc.submit(_small(priority=1))
    hi = svc.submit(_small(priority=9, steps=4))   # distinct fingerprint
    svc.drain()
    assert hi.result().start_ms < lo.result().start_ms
    assert lo.result().wait_ms > 0.0


def test_batching_same_program_jobs_share_a_lease():
    svc = SimulationService(devices="TitanBlack", observability=True)
    a = svc.submit(_small(steps=3))
    b = svc.submit(_small(steps=4))       # same compile key, new result
    svc.drain()
    assert svc.batches >= 1
    # back-to-back on one lease: second starts when the first ends
    ra, rb = a.result(), b.result()
    lo, hi = sorted((ra, rb), key=lambda r: r.start_ms)
    assert hi.start_ms == pytest.approx(lo.end_ms)
    assert svc.obs.metrics.get("repro_serve_batches_total").total() >= 1


def test_cancellation_evicts_queued_job():
    svc = SimulationService(devices="TitanBlack")
    keep = svc.submit(_small(steps=3))
    drop = svc.submit(_small(steps=4))
    assert drop.cancel()
    assert drop.state == "EVICTED" and drop.error == "cancelled"
    with pytest.raises(JobError):
        drop.result()
    assert keep.result().time_step == 3
    assert not drop.cancel()              # terminal: second cancel refused


def test_deadline_eviction():
    svc = SimulationService(devices="TitanBlack", max_batch=1)
    first = svc.submit(_small(priority=9, steps=4))
    # the pool is busy with `first` when this one could start, and its
    # deadline allows no wait at all
    late = svc.submit(_small(priority=1, deadline_ms=0.0))
    svc.drain()
    assert first.state == "DONE"
    assert late.state == "EVICTED"
    assert "deadline" in late.error


def test_backpressure_and_admission_errors():
    svc = SimulationService(devices="TitanBlack", max_queue=1)
    svc.submit(_small())
    with pytest.raises(QueueFull):
        svc.submit(_small(steps=4))
    with pytest.raises(InvalidRequest):
        svc.submit(_small(scheme="nope"))
    with pytest.raises(InvalidRequest):
        svc.submit(_small(shards=3))      # pool has one device
    with pytest.raises(InvalidRequest):
        svc.submit(_small(steps=0))


def test_retry_recovers_transient_fault_without_resilient_executor():
    # a transient launch abort at step 0 fails attempt 1 (the plain
    # executor surfaces the typed error); the per-job retry re-runs and
    # the one-shot fault does not refire
    faults = FaultPlan([FaultSpec("launch_abort", steps=(0,))], seed=3)
    svc = SimulationService(devices="TitanBlack", faults=faults,
                            job_attempts=2)
    h = svc.submit(_small())
    r = h.result()
    assert h.state == "DONE" and r.attempts == 2


def test_persistent_fault_exhausts_attempts_and_fails():
    faults = FaultPlan([FaultSpec("launch_abort", steps=(0,),
                                  persistent=True)], seed=3)
    svc = SimulationService(devices="TitanBlack", faults=faults,
                            job_attempts=1)
    h = svc.submit(_small())
    svc.drain()
    assert h.state == "FAILED"
    with pytest.raises(JobError) as err:
        h.result()
    assert "attempt 1" in str(err.value)


def test_sharded_job_runs_decomposed_and_bit_identical():
    svc = SimulationService(devices="TitanBlack:2")
    h = svc.submit(_small(room=Room(Grid3D(12, 10, 10), DomeRoom()),
                          steps=4, shards=2))
    got = h.result()
    assert len(got.devices) == 2
    ref = Session().simulate(h.request.room, 4, scheme=h.request.scheme)
    assert np.array_equal(got.field, ref.field)


def test_serve_metrics_in_prometheus_export():
    svc = SimulationService(devices="TitanBlack:2", observability=True)
    handles = [svc.submit(r) for r in _mixed_requests(steps=3)]
    svc.drain()
    assert all(h.done for h in handles)
    text = obs.prometheus_text(svc.obs.metrics)
    for metric in ("repro_serve_queue_depth",
                   "repro_serve_jobs_total",
                   "repro_serve_wait_ms",
                   "repro_serve_latency_ms",
                   "repro_serve_cache_hits_total",
                   "repro_serve_cache_misses_total"):
        assert metric in text, metric
    assert 'state="DONE"' in text
    assert 'tier="compile"' in text and 'tier="result"' in text
    # job lifecycle markers land in the trace without advancing the clock
    spans = svc.obs.tracer.find("serve.job")
    assert len(spans) == len(handles)
    assert all(s.duration_ms == 0.0 for s in spans)


def test_stats_shape_and_determinism():
    def run():
        svc = SimulationService(devices="TitanBlack:2")
        for r in _mixed_requests(steps=3):
            svc.submit(r)
        svc.drain()
        return svc.stats()

    s1, s2 = run(), run()
    assert s1 == s2                       # modelled clock => reproducible
    assert s1["states"]["DONE"] == len(MIX)
    assert s1["jobs_per_sec"] > 0
    assert s1["latency_ms"]["p95"] >= s1["latency_ms"]["p50"] > 0
    assert s1["pool"] == ["TitanBlack#0", "TitanBlack#1"]


def test_session_service_shares_pool_and_obs():
    session = Session(devices="TitanBlack:2", observability=True)
    svc = session.service(max_queue=4)
    assert svc.pool.devices == session.devices
    assert svc.obs is session.obs
    h = svc.submit(_small())
    assert h.result().time_step == 3


def test_cancel_during_batch_never_double_completes(monkeypatch):
    """Regression: a job cancelled between batch formation and its turn
    on the lease must stay EVICTED — not be flipped to RUNNING, executed,
    and double-completed over the cancellation."""
    svc = SimulationService(devices="TitanBlack", max_batch=4)
    lead = svc.submit(_small(steps=4))
    mate = svc.submit(_small(steps=5))    # same program, distinct job
    real_execute = SimulationService._execute

    def cancel_mate_then_execute(self, handle, slots, **kw):
        # the cancel lands while the batch leader holds the lease
        mate.cancel()
        return real_execute(self, handle, slots, **kw)

    monkeypatch.setattr(SimulationService, "_execute",
                        cancel_mate_then_execute)
    svc.drain()
    assert lead.state == "DONE"
    assert mate.state == "EVICTED" and mate._result is None
    assert "cancelled" in mate.error
    with pytest.raises(JobError):
        mate.result()
    # the service itself stays consistent for further work
    monkeypatch.undo()
    assert svc.submit(_small(steps=6)).result().time_step == 6


def test_cancelled_lead_does_not_burn_lease():
    """Regression: a batch whose every member was cancelled must not
    advance the slots' busy horizon (no leaked lease)."""
    svc = SimulationService(devices="TitanBlack")
    h = svc.submit(_small())
    assert h.cancel()
    before = [s.busy_until_ms for s in svc.pool.slots]
    svc._place_batch(h)          # the race: cancel landed after the pop
    assert h.state == "EVICTED" and h._result is None
    assert [s.busy_until_ms for s in svc.pool.slots] == before
