"""Per-job trace context: derivation, propagation, journalling, recovery,
and the obs-on/obs-off byte-identity discipline."""

import json

import pytest

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.serve import (Journal, SimulationService, SubmitRequest,
                         derive_trace_id)


def _req(steps=3, priority=0, dims=(10, 8, 8), **kw):
    kw.setdefault("receivers", {"mic": "center"})
    return SubmitRequest(room=Room(Grid3D(*dims), BoxRoom()), steps=steps,
                         priority=priority, **kw)


class TestDerivation:
    def test_trace_id_is_fingerprint_prefix(self):
        req = _req()
        assert derive_trace_id(req.fingerprint()) == \
            "t-" + req.fingerprint()[:16]

    def test_handle_carries_trace_id(self):
        svc = SimulationService(devices="TitanBlack")
        h = svc.submit(_req())
        assert h.trace_id == derive_trace_id(h.request.fingerprint())
        svc.close()

    def test_duplicate_submits_share_a_trace(self):
        """Duplicates share an answer, so they share a lane."""
        svc = SimulationService(devices="TitanBlack")
        a = svc.submit(_req(steps=4))
        b = svc.submit(_req(steps=4))
        c = svc.submit(_req(steps=5))
        assert a.trace_id == b.trace_id != c.trace_id
        svc.close()


class TestPropagation:
    def test_execute_spans_and_lanes_carry_trace_id(self):
        svc = SimulationService(devices="TitanBlack", observability=True)
        h = svc.submit(_req())
        svc.drain()
        execs = [s for s in svc.obs.tracer.spans if s.name == "serve.execute"]
        assert execs and all(
            s.attrs["trace_id"] == h.trace_id for s in execs)
        lanes = [s for s in svc.obs.tracer.spans if s.cat == "job"]
        assert {s.attrs["trace_id"] for s in lanes} == {h.trace_id}
        names = {s.name for s in lanes}
        assert "job" in names and "job.run" in names
        svc.close()

    def test_flight_recorder_sees_trace(self):
        svc = SimulationService(devices="TitanBlack")   # obs OFF
        h = svc.submit(_req())
        svc.drain()
        kinds = {e["kind"] for e in svc.flight.events()}
        assert {"submit", "lease", "complete"} <= kinds
        assert all(e["trace"] == h.trace_id
                   for e in svc.flight.events("submit"))
        svc.close()


class TestJournalling:
    def test_records_carry_trace_id(self, tmp_path):
        svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
        h = svc.submit(_req())
        svc.drain()
        svc.close()
        records = Journal(tmp_path / "journal.wal").open()
        assert records
        assert all(r.trace_id == h.trace_id for r in records)

    def test_recovery_preserves_journalled_trace(self, tmp_path):
        svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
        req = _req(steps=4)
        expect = svc.submit(req).trace_id
        svc.close()                      # in-flight: will requeue
        back = SimulationService.recover(tmp_path, devices="TitanBlack")
        [h] = back._handles
        assert h.trace_id == expect
        back.close()


class TestByteIdentity:
    def test_stats_identical_obs_on_vs_off(self):
        def run(obs):
            svc = SimulationService(devices="TitanBlack:2",
                                    observability=obs)
            for i in range(4):
                svc.submit(_req(steps=3 + i % 2, priority=i % 2))
            svc.drain()
            stats = svc.stats()
            svc.close()
            return stats

        on, off = run(True), run(False)
        assert json.dumps(on, sort_keys=True) == \
            json.dumps(off, sort_keys=True)

    def test_results_identical_obs_on_vs_off(self):
        import numpy as np

        def run(obs):
            svc = SimulationService(devices="TitanBlack",
                                    observability=obs)
            h = svc.submit(_req(steps=4))
            svc.drain()
            res = h.result()
            svc.close()
            return res

        a, b = run(True), run(False)
        assert np.array_equal(a.field, b.field)
        assert a.latency_ms == b.latency_ms


class TestObsOffGuards:
    def test_timeseries_and_slo_absent_when_off(self):
        svc = SimulationService(devices="TitanBlack")
        assert svc.timeseries is None and svc.slo is None
        svc.submit(_req())
        svc.drain()                      # must not touch the None sinks
        svc.close()

    def test_slot_busy_tracked_regardless(self):
        svc = SimulationService(devices="TitanBlack")
        svc.submit(_req())
        svc.drain()
        assert sum(svc.slot_busy_ms) > 0.0
        svc.close()
