"""Bounded priority queue: ordering, backpressure, lazy deletion."""

import pytest

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.serve import (BoundedPriorityQueue, JobHandle, QueueFull,
                         SubmitRequest)


def _req(priority=0, **kw):
    return SubmitRequest(room=Room(Grid3D(8, 8, 8), BoxRoom()), steps=2,
                         priority=priority, **kw)


def _handle(job_id, priority=0):
    return JobHandle(job_id, _req(priority), submit_ms=0.0, service=None)


def test_priority_order_with_fifo_ties():
    q = BoundedPriorityQueue(capacity=8)
    low, hi1, hi2 = _handle(1, priority=1), _handle(2, 9), _handle(3, 9)
    for h in (low, hi1, hi2):
        q.push(h)
    # higher priority first; equal priorities in submission order
    assert [q.pop(), q.pop(), q.pop()] == [hi1, hi2, low]
    assert q.pop() is None


def test_capacity_counts_live_entries_only():
    q = BoundedPriorityQueue(capacity=2)
    a, b = _handle(1), _handle(2)
    q.push(a)
    q.push(b)
    with pytest.raises(QueueFull) as err:
        q.push(_handle(3))
    assert err.value.capacity == 2
    # a stale entry (handle left QUEUED) frees capacity without a pop
    a.state = "EVICTED"
    assert len(q) == 1
    q.push(_handle(4))          # no longer full
    assert len(q) == 2


def test_pop_skips_stale_entries():
    q = BoundedPriorityQueue(capacity=4)
    a, b = _handle(1, priority=5), _handle(2, priority=1)
    q.push(a)
    q.push(b)
    a.state = "RUNNING"         # lazily deleted
    assert q.pop() is b
    assert q.pop() is None


def test_take_matching_orders_and_limits():
    q = BoundedPriorityQueue(capacity=8)
    handles = [_handle(i, priority=p) for i, p in
               enumerate((1, 7, 3, 9, 5))]
    for h in handles:
        q.push(h)
    odd = q.take_matching(lambda h: h.request.priority % 2 == 1, limit=3)
    assert [h.request.priority for h in odd] == [9, 7, 5]
    assert q.take_matching(lambda h: True, limit=0) == []


def test_capacity_validation():
    with pytest.raises(ValueError):
        BoundedPriorityQueue(capacity=0)
