"""Write-ahead journal: framing, torn-tail repair, corruption, codec."""

import json
import struct
import zlib

import pytest

from repro.acoustics import (Branch, DomeRoom, FDMaterial, FIMaterial,
                             Grid3D, LShapedRoom, Room)
from repro.serve import (JOURNAL_EVENTS, DurabilityError, Journal,
                         JournalCorrupt, JournalTornWarning, SubmitRequest,
                         WorkerCrash, decode_request, encode_request)
from repro.gpu import FaultPlan, FaultSpec

_HEADER = struct.Struct("<II")


def _frame(obj: dict) -> bytes:
    data = json.dumps(obj).encode()
    return _HEADER.pack(len(data), zlib.crc32(data)) + data


def _rec(seq, event="submit", fp="f" * 40, job=1, **extra):
    return {"seq": seq, "event": event, "fp": fp, "job": job, **extra}


def test_append_and_reopen_roundtrip(tmp_path):
    path = tmp_path / "j.wal"
    j = Journal(path)
    assert j.open() == []
    j.append("submit", fingerprint="a" * 40, job_id=1, request={"x": 1})
    j.append("start", fingerprint="a" * 40, job_id=1)
    j.append("complete", fingerprint="a" * 40, job_id=1, end_ms=4.5)
    j.close()
    j2 = Journal(path)
    records = j2.open()
    assert [r.event for r in records] == ["submit", "start", "complete"]
    assert [r.seq for r in records] == [0, 1, 2]
    assert records[0].payload == {"request": {"x": 1}}
    assert records[2].payload == {"end_ms": 4.5}
    # appends continue the sequence after reopen
    rec = j2.append("evict", fingerprint="a" * 40, job_id=1, reason="x")
    assert rec.seq == 3
    j2.close()


def test_empty_file_recovers_to_nothing(tmp_path):
    path = tmp_path / "j.wal"
    path.write_bytes(b"")
    j = Journal(path)
    assert j.open() == []
    assert j.torn_truncated == 0
    j.close()


@pytest.mark.parametrize("tear", ["header", "payload", "crc"])
def test_single_torn_trailing_record_is_truncated(tmp_path, tear):
    path = tmp_path / "j.wal"
    good = _frame(_rec(0)) + _frame(_rec(1, event="start"))
    if tear == "header":
        torn = b"\x07\x00"                       # partial length field
    elif tear == "payload":
        torn = _frame(_rec(2, event="complete"))[:_HEADER.size + 5]
    else:                                        # full length, bad CRC
        data = json.dumps(_rec(2, event="complete")).encode()
        torn = _HEADER.pack(len(data), 0xDEADBEEF) + data
    path.write_bytes(good + torn)
    j = Journal(path)
    with pytest.warns(JournalTornWarning):
        records = j.open()
    assert [r.event for r in records] == ["submit", "start"]
    assert j.torn_truncated == 1
    j.close()
    # the repair is durable: the file now holds exactly the good prefix
    assert path.read_bytes() == good


def test_crc_mismatch_mid_file_is_a_hard_error(tmp_path):
    path = tmp_path / "j.wal"
    data = json.dumps(_rec(1, event="start")).encode()
    bad_middle = _HEADER.pack(len(data), zlib.crc32(data) ^ 1) + data
    path.write_bytes(_frame(_rec(0)) + bad_middle
                     + _frame(_rec(2, event="complete")))
    with pytest.raises(JournalCorrupt, match="mid-file corruption"):
        Journal(path).open()


def test_repair_then_reopen_is_idempotent(tmp_path):
    path = tmp_path / "j.wal"
    path.write_bytes(_frame(_rec(0)) + b"\x99")
    with pytest.warns(JournalTornWarning):
        Journal(path).open()
    # second open: tail already repaired, no warning, same records
    j = Journal(path)
    records = j.open()
    assert [r.seq for r in records] == [0]
    assert j.torn_truncated == 0
    j.close()


def test_unknown_event_rejected(tmp_path):
    j = Journal(tmp_path / "j.wal")
    j.open()
    with pytest.raises(ValueError, match="unknown journal event"):
        j.append("resurrect", fingerprint="a" * 40, job_id=1)
    j.close()
    assert "submit" in JOURNAL_EVENTS and "cancel" in JOURNAL_EVENTS


def test_append_to_closed_journal_is_typed(tmp_path):
    j = Journal(tmp_path / "j.wal")
    with pytest.raises(DurabilityError, match="not open"):
        j.append("submit", fingerprint="a" * 40, job_id=1)


def test_torn_write_fault_leaves_repairable_tail(tmp_path):
    path = tmp_path / "j.wal"
    plan = FaultPlan([FaultSpec("journal_torn_write", steps=(1,))], seed=3)
    j = Journal(path, faults=plan)
    j.open()
    j.append("submit", fingerprint="b" * 40, job_id=1)
    with pytest.raises(WorkerCrash, match="torn write"):
        j.append("start", fingerprint="b" * 40, job_id=1)
    j.close()
    j2 = Journal(path)
    with pytest.warns(JournalTornWarning):
        records = j2.open()
    assert [r.event for r in records] == ["submit"]
    j2.close()


def test_disk_full_fault_raises_before_writing(tmp_path):
    path = tmp_path / "j.wal"
    plan = FaultPlan([FaultSpec("disk_full", steps=(0,))], seed=3)
    j = Journal(path, faults=plan)
    j.open()
    with pytest.raises(DurabilityError, match="disk_full"):
        j.append("submit", fingerprint="c" * 40, job_id=1)
    assert j.bytes_appended == 0
    # the fault is transient (fired once): the retry lands
    j.append("submit", fingerprint="c" * 40, job_id=1)
    j.close()
    assert Journal(path).open()[0].event == "submit"


@pytest.mark.parametrize("request_fn", [
    lambda: SubmitRequest(room=Room(Grid3D(10, 8, 8), DomeRoom()), steps=4),
    lambda: SubmitRequest(
        room=Room(Grid3D(12, 10, 8), LShapedRoom(cut_fraction=0.4)),
        steps=6, scheme="fd_mm", precision="single", priority=7,
        deadline_ms=125.5, impulse=(3, 4, 2),
        receivers={"mic": "center", "corner": (2, 2, 2)},
        materials=(FIMaterial("carpet", beta=0.55),
                   FDMaterial("panel", beta_inf=0.1,
                              branches=(Branch(m=1.0, r=0.5, k=2e4),))),
        num_branches=2, shards=2),
])
def test_request_codec_is_fingerprint_exact(request_fn):
    req = request_fn()
    encoded = json.loads(json.dumps(encode_request(req)))   # disk roundtrip
    back = decode_request(encoded)
    assert back.fingerprint() == req.fingerprint()
    # scheduling knobs survive too (they are not in the fingerprint)
    assert back.priority == req.priority
    assert back.deadline_ms == req.deadline_ms
    assert back.shards == req.shards


def test_unregistered_shape_is_not_journallable():
    class WeirdRoom:
        pass

    grid = Grid3D(8, 8, 8)
    req = SubmitRequest.__new__(SubmitRequest)
    object.__setattr__(req, "room", type("R", (), {"grid": grid,
                                                   "shape": WeirdRoom()})())
    with pytest.raises(ValueError, match="not journal-serialisable"):
        encode_request(req)


def test_mixed_version_replay_tolerates_missing_trace(tmp_path):
    """Journals written before trace context existed replay cleanly
    alongside new-format records, and the trace key never leaks into
    the payload."""
    path = tmp_path / "j.wal"
    old = _rec(0, request={"x": 1})                     # pre-trace format
    new = _rec(1, event="start", trace="t-" + "f" * 16)
    path.write_bytes(_frame(old) + _frame(new))

    a, b = Journal(path).open()
    assert a.trace_id is None
    assert b.trace_id == "t-" + "f" * 16
    assert "trace" not in a.payload and "trace" not in b.payload
    assert a.payload == {"request": {"x": 1}}


def test_append_without_trace_writes_old_format(tmp_path):
    path = tmp_path / "j.wal"
    j = Journal(path)
    j.open()
    j.append("submit", fingerprint="a" * 40, job_id=1)
    j.append("start", fingerprint="a" * 40, job_id=1, trace_id="t-abc")
    j.close()
    raw = path.read_bytes()
    first = json.loads(raw[8:8 + _HEADER.unpack_from(raw)[0]])
    assert "trace" not in first                         # omitted, not null
    a, b = Journal(path).open()
    assert a.trace_id is None and b.trace_id == "t-abc"


def test_recovery_of_old_journal_rederives_trace_ids(tmp_path):
    """A pre-trace journal recovers with the same ids new code would
    assign, because ids are derived from the fingerprint."""
    from repro.acoustics import BoxRoom, Grid3D, Room
    from repro.serve import SimulationService, derive_trace_id

    req = SubmitRequest(room=Room(Grid3D(10, 8, 8), BoxRoom()), steps=3,
                        receivers={"mic": "center"})
    svc = SimulationService(devices="TitanBlack", durable_dir=tmp_path)
    svc.submit(req)
    svc.close()
    # strip the trace keys: simulate a journal from an older build
    path = tmp_path / "journal.wal"
    frames = []
    for rec in Journal(path).open():
        body = {"seq": rec.seq, "event": rec.event, "fp": rec.fingerprint,
                "job": rec.job_id, **rec.payload}
        frames.append(_frame(body))
    path.write_bytes(b"".join(frames))

    back = SimulationService.recover(tmp_path, devices="TitanBlack")
    [h] = back._handles
    assert h.trace_id == derive_trace_id(req.fingerprint())
    back.close()
