"""Serving benchmark + CLIs: deterministic artifacts, smoke exit codes."""

import json

from repro.bench.serve import render_serve, serve_benchmark, serve_workload


def test_serve_benchmark_is_deterministic():
    a = serve_benchmark(jobs=10, steps=3)
    b = serve_benchmark(jobs=10, steps=3)
    assert a == b


def test_serve_benchmark_artifact_contents():
    stats = serve_benchmark(jobs=12, steps=3)
    assert stats["states"]["DONE"] == 12
    assert stats["jobs_per_sec"] > 0
    assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"] > 0
    assert stats["cache"]["compile"]["hits"] > 0
    assert stats["cache"]["result"]["hits"] >= 2      # the workload dups
    assert stats["batches"] >= 1
    assert len(stats["per_job"]) == 12
    assert all(j["state"] == "DONE" for j in stats["per_job"])
    json.dumps(stats)                                 # JSON-able artifact


def test_serve_workload_mix():
    reqs = serve_workload(jobs=12, steps=3)
    assert {r.scheme for r in reqs} == {"fi", "fi_mm", "fd_mm"}
    assert {r.precision for r in reqs} == {"single", "double"}
    assert len({r.priority for r in reqs}) > 3
    fps = [r.fingerprint() for r in reqs]
    assert len(set(fps)) < len(fps)                   # duplicates present


def test_render_serve_text():
    text = render_serve()
    assert "Serving throughput" in text
    assert "jobs/sec" in text and "p95" in text


def test_bench_cli_writes_serve_artifact(tmp_path, capsys):
    from repro.bench.__main__ import main
    out = tmp_path / "serve.json"
    assert main(["serve", "--json", str(out)]) == 0
    stats = json.loads(out.read_text())
    assert stats["states"]["DONE"] == len(stats["per_job"])
    assert "Serving throughput" in capsys.readouterr().out


def test_bench_cli_json_stays_scaling_without_serve(tmp_path):
    from repro.bench.__main__ import main
    out = tmp_path / "scaling.json"
    assert main(["scaling", "--json", str(out)]) == 0
    rows = json.loads(out.read_text())
    assert isinstance(rows, list) and "shards" in rows[0]


def test_serve_smoke_cli(tmp_path, capsys):
    from repro.serve.__main__ import main
    out = tmp_path / "smoke.json"
    rc = main(["--jobs", "6", "--steps", "4", "--pool", "TitanBlack:2",
               "--faults", "--verify", "--json", str(out)])
    assert rc == 0
    stats = json.loads(out.read_text())
    assert stats["verified"] is True and stats["errors"] == []
    assert stats["states"]["DONE"] == 6
    assert "bit-identical" in capsys.readouterr().out
