"""Cache tiers: compile memoisation, fingerprints, result LRU."""

import numpy as np
import pytest

from repro.acoustics import BoxRoom, DomeRoom, Grid3D, Room
from repro.gpu import resolve_device
from repro.serve import (CompileCache, JobResult, ResultCache, SubmitRequest,
                         request_fingerprint)


def _req(**kw):
    kw.setdefault("room", Room(Grid3D(8, 8, 8), BoxRoom()))
    kw.setdefault("steps", 2)
    return SubmitRequest(**kw)


def _result(tag=0.0):
    return JobResult(field=np.full(3, tag), time_step=1, scheme="fi_mm",
                     precision="double", devices=("TitanBlack",),
                     kernel_time_ms=1.0, halo_time_ms=0.0,
                     submit_ms=0.0, start_ms=1.0, end_ms=2.0)


# -- compile tier ---------------------------------------------------------------

def test_compile_cache_shares_across_pool_shards():
    cc = CompileCache()
    d0, d1 = resolve_device("TitanBlack:2")
    p0 = cc.program_for(_req(scheme="fi_mm"), d0)
    p1 = cc.program_for(_req(scheme="fi_mm"), d1)
    assert p0 is p1                       # same hardware model, one compile
    assert (cc.hits, cc.misses, len(cc)) == (1, 1, 1)


def test_compile_key_branch_semantics():
    d = resolve_device("TitanBlack")[0]
    # fi has no branch dimension; fi_mm always compiles the 3-branch
    # two-kernel program; fd_mm keys on the requested branch count
    assert CompileCache.key(_req(scheme="fi", num_branches=5), d)[2] == 0
    assert CompileCache.key(_req(scheme="fi_mm", num_branches=5), d)[2] == 3
    assert CompileCache.key(_req(scheme="fd_mm", num_branches=5), d)[2] == 5
    k_single = CompileCache.key(_req(precision="single"), d)
    k_double = CompileCache.key(_req(precision="double"), d)
    assert k_single != k_double


def test_compile_cache_distinguishes_schemes():
    cc = CompileCache()
    d = resolve_device("TitanBlack")[0]
    pa = cc.program_for(_req(scheme="fi"), d)
    pb = cc.program_for(_req(scheme="fd_mm"), d)
    assert pa is not pb
    assert cc.stats()["misses"] == 2


# -- fingerprints ---------------------------------------------------------------

def test_fingerprint_ignores_scheduling_knobs():
    base = _req(priority=0)
    assert request_fingerprint(base) == request_fingerprint(
        _req(priority=9, deadline_ms=5.0, shards=1))


def test_fingerprint_covers_simulation_inputs():
    base = _req()
    assert request_fingerprint(base) != request_fingerprint(_req(steps=3))
    assert request_fingerprint(base) != request_fingerprint(
        _req(scheme="fd_mm"))
    assert request_fingerprint(base) != request_fingerprint(
        _req(room=Room(Grid3D(8, 8, 8), DomeRoom())))
    assert request_fingerprint(base) != request_fingerprint(
        _req(receivers={"mic": "center"}))


# -- result tier ----------------------------------------------------------------

def test_result_cache_lru_eviction():
    rc = ResultCache(capacity=2)
    rc.put("a", _result(1))
    rc.put("b", _result(2))
    assert rc.get("a") is not None        # refresh 'a'; 'b' becomes LRU
    rc.put("c", _result(3))
    assert rc.get("b") is None
    assert rc.get("a") is not None and rc.get("c") is not None
    assert rc.evictions == 1


def test_result_cache_rebase_shares_payload():
    rc = ResultCache()
    r = _result(7)
    rc.put("x", r)
    hit = ResultCache.rebase(rc.get("x"), submit_ms=10.0, now_ms=12.0)
    assert hit.from_cache and hit.attempts == 0
    assert hit.start_ms == hit.end_ms == 12.0 and hit.submit_ms == 10.0
    assert hit.field is r.field           # shared, not copied
    assert hit.wait_ms == 2.0 and hit.latency_ms == 2.0


def test_result_cache_zero_capacity_disables():
    rc = ResultCache(capacity=0)
    rc.put("a", _result())
    assert rc.get("a") is None and len(rc) == 0
    with pytest.raises(ValueError):
        ResultCache(capacity=-1)
