"""Tests for the virtual device table and the cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.paper_data import TABLE3_PLATFORMS
from repro.gpu.autotune import CANDIDATE_WORKGROUPS, autotune_workgroup
from repro.gpu.costmodel import (HANDWRITTEN_TRAITS, LIFT_TRAITS,
                                 kernel_time, sector_bytes_per_item)
from repro.gpu.device import (AMD_HD7970, DeviceSpec, NVIDIA_GTX780,
                              NVIDIA_TITAN_BLACK, PAPER_DEVICES,
                              device_by_name)
from repro.lift.analysis import Resources


class TestDeviceTable:
    def test_matches_paper_table3(self):
        for name, spec in PAPER_DEVICES.items():
            paper = TABLE3_PLATFORMS[name]
            assert spec.mem_bandwidth_gbs == paper["bandwidth_gbs"]
            assert spec.sp_gflops == paper["sp_gflops"]

    def test_four_devices(self):
        assert len(PAPER_DEVICES) == 4

    def test_lookup(self):
        assert device_by_name("GTX780") is NVIDIA_GTX780
        with pytest.raises(ValueError):
            device_by_name("H100")

    def test_dp_rates(self):
        assert NVIDIA_TITAN_BLACK.dp_gflops == pytest.approx(5120 / 3)
        assert NVIDIA_GTX780.dp_gflops == pytest.approx(3977 / 24)
        assert AMD_HD7970.dp_gflops == pytest.approx(4096 / 4)

    def test_flops_rate(self):
        assert NVIDIA_TITAN_BLACK.flops_rate("single") == 5120e9
        assert NVIDIA_TITAN_BLACK.flops_rate("double") \
            == pytest.approx(5120e9 / 3)
        with pytest.raises(ValueError):
            NVIDIA_TITAN_BLACK.flops_rate("half")

    def test_vendor_sector_sizes(self):
        for spec in PAPER_DEVICES.values():
            assert spec.sector_bytes == (32 if spec.vendor == "nvidia"
                                         else 64)


class TestSectorModel:
    def test_contiguous_indices_cost_width(self):
        idx = np.arange(1024)
        assert sector_bytes_per_item(idx, 8, 32) == pytest.approx(8.0)
        assert sector_bytes_per_item(idx, 4, 32) == pytest.approx(4.0)

    def test_fully_scattered_cost_sector(self):
        idx = np.arange(0, 1024 * 8, 8)  # one 8-byte element per 64B
        assert sector_bytes_per_item(idx, 8, 32) == pytest.approx(32.0)

    def test_width_independence_when_scattered(self):
        """The paper's observation: boundary kernels gain little from
        single precision because isolated accesses move whole sectors."""
        idx = np.arange(0, 512 * 16, 16)
        c4 = sector_bytes_per_item(idx, 4, 32)
        c8 = sector_bytes_per_item(idx, 8, 32)
        assert c8 / c4 < 1.3  # nowhere near the 2x of contiguous streams

    def test_empty_indices(self):
        assert sector_bytes_per_item(np.array([], dtype=np.int64), 8, 32) == 8.0

    @given(st.lists(st.integers(0, 10000), min_size=1, max_size=400,
                    unique=True))
    def test_bounds(self, idx):
        c = sector_bytes_per_item(np.asarray(idx), 8, 32)
        assert 8.0 - 1e-9 <= c <= 32.0 + 1e-9

    @given(st.lists(st.integers(0, 10000), min_size=1, max_size=400,
                    unique=True))
    def test_monotone_in_width(self, idx):
        arr = np.asarray(idx)
        assert sector_bytes_per_item(arr, 4, 32) \
            <= sector_bytes_per_item(arr, 8, 32) + 1e-9


def _gather_resources():
    r = Resources()
    r.load(4, 1, array="idx", access_class="contiguous")
    r.load(8, 2, array="data", access_class="gathered")
    r.store(8, 1, array="out", access_class="gathered")
    r.flops = 10
    return r


def _stream_resources():
    r = Resources()
    r.load(8, 7, array="curr", access_class="contiguous")
    r.load(8, 1, array="prev", access_class="contiguous")
    r.store(8, 1, array="out", access_class="contiguous")
    r.flops = 20
    return r


class TestKernelTime:
    def test_more_items_takes_longer(self):
        r = _stream_resources()
        t1 = kernel_time(r, 10 ** 5, NVIDIA_TITAN_BLACK, "double")
        t2 = kernel_time(r, 10 ** 6, NVIDIA_TITAN_BLACK, "double")
        assert t2.time_ms > t1.time_ms

    def test_higher_bandwidth_is_faster(self):
        r = _stream_resources()
        t_titan = kernel_time(r, 10 ** 6, NVIDIA_TITAN_BLACK, "double")
        t_780 = kernel_time(r, 10 ** 6, NVIDIA_GTX780, "double")
        assert t_titan.time_ms < t_780.time_ms

    def test_contiguity_speeds_up_gathers(self):
        r = _gather_resources()
        contiguous = np.arange(10 ** 5)
        scattered = np.arange(10 ** 5) * 7
        t_c = kernel_time(r, 10 ** 5, NVIDIA_TITAN_BLACK, "double",
                          gather_index=contiguous)
        t_s = kernel_time(r, 10 ** 5, NVIDIA_TITAN_BLACK, "double",
                          gather_index=scattered)
        assert t_c.time_ms < t_s.time_ms

    def test_unknown_gathers_priced_at_sector(self):
        r = _gather_resources()
        t = kernel_time(r, 10 ** 5, NVIDIA_TITAN_BLACK, "double",
                        gather_index=None)
        # 3 gathered accesses x 32B sector + 4B contiguous
        assert t.bytes_per_item == pytest.approx(3 * 32 + 4)

    def test_table_penalty_only_lift_nvidia_double(self):
        r = _gather_resources()
        r.load(8, 2, array="beta", access_class="table")
        idx = np.arange(10 ** 5)
        args = (r, 10 ** 5, NVIDIA_TITAN_BLACK)
        t_hand = kernel_time(*args, "double", HANDWRITTEN_TRAITS, idx)
        t_lift = kernel_time(*args, "double", LIFT_TRAITS, idx)
        assert t_lift.time_ms > t_hand.time_ms
        # no penalty in single precision
        t_hand_s = kernel_time(*args, "single", HANDWRITTEN_TRAITS, idx)
        t_lift_s = kernel_time(*args, "single", LIFT_TRAITS, idx)
        assert t_lift_s.time_ms == pytest.approx(t_hand_s.time_ms)
        # no penalty on AMD
        t_hand_a = kernel_time(r, 10 ** 5, AMD_HD7970, "double",
                               HANDWRITTEN_TRAITS, idx)
        t_lift_a = kernel_time(r, 10 ** 5, AMD_HD7970, "double",
                               LIFT_TRAITS, idx)
        assert t_lift_a.time_ms == pytest.approx(t_hand_a.time_ms)

    def test_stencil_reuse_collapses_loads(self):
        r = _stream_resources()
        t = kernel_time(r, 10 ** 6, NVIDIA_TITAN_BLACK, "double")
        # curr: 7 loads collapse to ~1.7 fetches, not 7
        assert t.bytes_per_item < 7 * 8

    def test_divergence_penalty(self):
        r = _stream_resources()
        r.flops = 10 ** 4  # force compute-bound
        t_plain = kernel_time(r, 10 ** 6, NVIDIA_TITAN_BLACK, "double")
        r.divergent = True
        t_div = kernel_time(r, 10 ** 6, NVIDIA_TITAN_BLACK, "double")
        assert t_div.time_ms > t_plain.time_ms

    def test_launch_overhead_floor(self):
        r = _stream_resources()
        t = kernel_time(r, 1, NVIDIA_TITAN_BLACK, "double")
        assert t.time_ms >= NVIDIA_TITAN_BLACK.launch_overhead_us * 1e-3

    def test_compute_bound_kernel(self):
        r = Resources()
        r.load(8, 1, array="a", access_class="contiguous")
        r.flops = 10 ** 3
        t = kernel_time(r, 10 ** 6, NVIDIA_GTX780, "double")
        assert t.compute_time_ms > t.mem_time_ms


class TestAutotune:
    def test_best_not_worse_than_any_candidate(self):
        r = _gather_resources()
        idx = np.arange(10 ** 5) * 3
        best = autotune_workgroup(r, 10 ** 5, NVIDIA_TITAN_BLACK, "double",
                                  LIFT_TRAITS, idx)
        for wg in CANDIDATE_WORKGROUPS:
            t = kernel_time(r, 10 ** 5, NVIDIA_TITAN_BLACK, "double",
                            LIFT_TRAITS, idx, workgroup=wg)
            assert best.time_ms <= t.time_ms + 1e-12

    def test_deterministic(self):
        r = _stream_resources()
        a = autotune_workgroup(r, 10 ** 6, AMD_HD7970, "single")
        b = autotune_workgroup(r, 10 ** 6, AMD_HD7970, "single")
        assert a.time_ms == b.time_ms and a.workgroup == b.workgroup

    def test_respects_device_max(self):
        small = DeviceSpec(name="tiny", vendor="nvidia",
                           mem_bandwidth_gbs=100, sp_gflops=1000,
                           dp_ratio=0.5, sector_bytes=32, compute_units=4,
                           warp_size=32, max_workgroup=128)
        r = _stream_resources()
        best = autotune_workgroup(r, 10 ** 5, small, "single")
        assert best.workgroup <= 128
