"""resolve_device error paths and the set_virtual_device deprecation shim."""

import warnings

import pytest

from repro import _deprecation
from repro.acoustics import BoxRoom, Grid3D, Room
from repro.acoustics.sim import RoomSimulation, SimConfig
from repro.gpu import DeviceSpec, NVIDIA_GTX780, resolve_device


# -- resolve_device error paths -------------------------------------------------

def test_unknown_name_lists_available():
    with pytest.raises(ValueError, match="unknown device 'NoSuchGPU'"):
        resolve_device("NoSuchGPU")


def test_bad_shard_count_syntax():
    with pytest.raises(ValueError, match="bad shard-count syntax"):
        resolve_device("TitanBlack:two")
    with pytest.raises(ValueError, match="bad shard-count syntax"):
        resolve_device("TitanBlack:")


def test_nonpositive_shard_count():
    with pytest.raises(ValueError, match="shard count must be >= 1"):
        resolve_device("TitanBlack:0")


def test_shard_syntax_with_unknown_name():
    with pytest.raises(ValueError, match="unknown device"):
        resolve_device("NoSuchGPU:2")


def test_empty_sequence_rejected():
    with pytest.raises(ValueError, match="empty device sequence"):
        resolve_device([])
    with pytest.raises(ValueError, match="empty device sequence"):
        resolve_device(())


def test_unresolvable_type_raises_typeerror():
    with pytest.raises(TypeError, match="cannot resolve device designation"):
        resolve_device(42)


def test_sequences_flatten_in_order():
    specs = resolve_device(["GTX780", NVIDIA_GTX780, "TitanBlack:2"])
    assert [d.name for d in specs] == ["GTX780", "GTX780", "TitanBlack#0",
                                       "TitanBlack#1"]
    assert all(isinstance(d, DeviceSpec) for d in specs)


# -- deprecation shim -----------------------------------------------------------

def _sim():
    cfg = SimConfig(room=Room(Grid3D(8, 8, 8), BoxRoom()),
                    backend="virtual_gpu")
    return RoomSimulation(cfg)


def test_set_virtual_device_warns_once_and_still_routes():
    _deprecation.reset()
    sim = _sim()
    with pytest.warns(DeprecationWarning, match="set_devices"):
        sim.set_virtual_device("GTX780")
    assert [d.name for d in sim.devices] == ["GTX780"]   # still re-targets
    # second call: routed, but silent (once-per-process warning)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        sim.set_virtual_device("AMD7970")
    assert [d.name for d in sim.devices] == ["AMD7970"]
    _deprecation.reset()


def test_shim_accepts_new_designation_forms():
    _deprecation.reset()
    sim = _sim()
    with pytest.warns(DeprecationWarning):
        sim.set_virtual_device("TitanBlack:2")
    assert [d.name for d in sim.devices] == ["TitanBlack#0", "TitanBlack#1"]
    _deprecation.reset()
