"""Tests for the virtual OpenCL runtime executing LIFT host plans."""

import numpy as np
import pytest

from repro.acoustics import kernels_numpy as kn
from repro.acoustics.geometry import BoxRoom, DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import (MaterialTable, default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (HANDWRITTEN_TRAITS, LIFT_TRAITS, NVIDIA_TITAN_BLACK,
                       AMD_HD7970, VirtualGPU)


@pytest.fixture(scope="module")
def problem():
    g = Grid3D(14, 12, 10)
    topo = build_topology(Room(g, DomeRoom()), num_materials=4)
    rng = np.random.default_rng(5)
    N = g.num_points
    guard = g.nx * g.ny
    ins = topo.inside.reshape(-1)

    def state():
        a = np.zeros(N + guard)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    return dict(g=g, topo=topo, N=N, guard=guard, prev=state(),
                curr=state(), rng=rng,
                nbrs_guarded=np.concatenate(
                    [topo.nbrs, np.zeros(guard, np.int32)]))


def fi_mm_inputs(p, table):
    g = p["g"]
    return dict(boundaries=p["topo"].boundary_indices,
                materialIdx=p["topo"].material,
                neighbors=p["nbrs_guarded"], betaTable=table.beta,
                prev1_h=p["curr"], prev2_h=p["prev"],
                lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)


def fi_mm_sizes(p, table):
    return dict(N=p["N"], NP=p["N"] + p["guard"],
                K=p["topo"].num_boundary_points, M=table.num_materials)


class TestExecution:
    def test_fi_mm_matches_baseline(self, problem):
        p = problem
        table = MaterialTable.from_fi(default_fi_materials(4))
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK, LIFT_TRAITS)
        res = gpu.execute(host, fi_mm_inputs(p, table), fi_mm_sizes(p, table))
        ref = np.zeros(p["N"])
        kn.volume_step(p["prev"][:p["N"]], p["curr"][:p["N"]], ref,
                       p["topo"].nbrs, p["g"].shape, p["g"].courant)
        kn.fi_mm_boundary(ref, p["prev"][:p["N"]],
                          p["topo"].boundary_indices, p["topo"].nbrs,
                          p["topo"].material, table.beta, p["g"].courant)
        np.testing.assert_allclose(np.asarray(res.result)[:p["N"]], ref,
                                   atol=1e-13)

    def test_fd_mm_matches_baseline(self, problem):
        p = problem
        table = MaterialTable.from_fd(default_fd_materials(4), 3)
        K = p["topo"].num_boundary_points
        rng = np.random.default_rng(8)
        g1 = rng.standard_normal(3 * K)
        v2 = rng.standard_normal(3 * K)
        host = compile_host(two_kernel_host("fd_mm", "double", 3).program,
                            "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK, LIFT_TRAITS)
        inputs = fi_mm_inputs(p, table)
        inputs.update(BI_h=table.BI.reshape(-1), DI_h=table.DI.reshape(-1),
                      F_h=table.F.reshape(-1), D_h=table.D.reshape(-1),
                      g1_h=g1, v2_h=v2, v1_h=np.zeros(3 * K), K=K)
        res = gpu.execute(host, inputs, fi_mm_sizes(p, table))
        ref = np.zeros(p["N"])
        kn.volume_step(p["prev"][:p["N"]], p["curr"][:p["N"]], ref,
                       p["topo"].nbrs, p["g"].shape, p["g"].courant)
        g1r, v1r, v2r = g1.copy(), np.zeros(3 * K), v2.copy()
        kn.fd_mm_boundary(ref, p["prev"][:p["N"]],
                          p["topo"].boundary_indices, p["topo"].nbrs,
                          p["topo"].material, table.beta, table.BI,
                          table.DI, table.F, table.D, g1r, v1r, v2r,
                          p["g"].courant)
        np.testing.assert_allclose(np.asarray(res.result)[:p["N"]], ref,
                                   atol=1e-12)
        # branch state written through the device buffers
        bg1 = res.buffers[[n for n in res.buffers if n.startswith("d_g1_h")][0]]
        bv1 = res.buffers[[n for n in res.buffers if n.startswith("d_v1_h")][0]]
        np.testing.assert_allclose(bg1, g1r, atol=1e-12)
        np.testing.assert_allclose(bv1, v1r, atol=1e-12)


class TestProfiling:
    def _run(self, p, device=NVIDIA_TITAN_BLACK, traits=LIFT_TRAITS):
        table = MaterialTable.from_fi(default_fi_materials(4))
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        gpu = VirtualGPU(device, traits)
        return gpu.execute(host, fi_mm_inputs(p, table),
                           fi_mm_sizes(p, table))

    def test_one_event_per_kernel(self, problem):
        res = self._run(problem)
        kernels = [e for e in res.events if e.kind == "kernel"]
        assert [e.name for e in kernels] == ["volume_handling_kernel",
                                             "boundary_handling_kernel"]

    def test_kernel_times_positive(self, problem):
        res = self._run(problem)
        assert res.kernel_time_ms() > 0
        for e in res.events:
            assert e.duration_ms > 0

    def test_kernel_time_excludes_transfers(self, problem):
        res = self._run(problem)
        assert res.kernel_time_ms() + res.transfer_time_ms() == pytest.approx(
            sum(e.duration_ms for e in res.events))

    def test_volume_kernel_dominates(self, problem):
        """The boundary is a small fraction of the volume work (Fig. 2
        direction) even at this tiny size."""
        res = self._run(problem)
        kernels = {e.name: e.duration_ms for e in res.events
                   if e.kind == "kernel"}
        assert kernels["boundary_handling_kernel"] \
            < kernels["volume_handling_kernel"] * 2

    def test_timing_metadata_attached(self, problem):
        res = self._run(problem)
        kernels = [e for e in res.events if e.kind == "kernel"]
        for e in kernels:
            assert e.timing is not None
            assert e.timing.bytes_per_item > 0

    def test_results_identical_across_devices(self, problem):
        """Modelled time differs, computed values must not."""
        a = self._run(problem, NVIDIA_TITAN_BLACK)
        b = self._run(problem, AMD_HD7970)
        np.testing.assert_array_equal(np.asarray(a.result),
                                      np.asarray(b.result))
        assert a.kernel_time_ms() != b.kernel_time_ms()

    def test_traits_do_not_change_results(self, problem):
        a = self._run(problem, traits=LIFT_TRAITS)
        b = self._run(problem, traits=HANDWRITTEN_TRAITS)
        np.testing.assert_array_equal(np.asarray(a.result),
                                      np.asarray(b.result))

    def test_autotune_off_uses_fixed_wg(self, problem):
        table = MaterialTable.from_fi(default_fi_materials(4))
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK, LIFT_TRAITS, autotune=False,
                         workgroup=64)
        res = gpu.execute(host, fi_mm_inputs(problem, table),
                          fi_mm_sizes(problem, table))
        kernels = [e for e in res.events if e.kind == "kernel"]
        assert all(e.timing.workgroup == 64 for e in kernels)


class TestIterativeExecution:
    """`execute_many`: the paper's 'kernels are executed iteratively' with
    resident device buffers and leapfrog buffer rotation."""

    def _ref(self, problem, scheme, steps):
        from repro.acoustics import RoomSimulation, SimConfig
        from repro.acoustics.geometry import DomeRoom, Room
        room = Room(problem["g"], DomeRoom())
        mats = (default_fd_materials(4) if scheme == "fd_mm"
                else default_fi_materials(4))
        sim = RoomSimulation(SimConfig(room=room, scheme=scheme,
                                       backend="numpy", materials=mats))
        sim.add_impulse("center")
        sim.run(steps)
        return sim

    def test_fi_mm_six_steps_match_reference(self, problem):
        from repro.acoustics import RoomSimulation, SimConfig
        from repro.acoustics.geometry import DomeRoom, Room
        steps = 6
        ref = self._ref(problem, "fi_mm", steps)
        sim = RoomSimulation(SimConfig(room=Room(problem["g"], DomeRoom()),
                                       scheme="fi_mm", backend="numpy",
                                       materials=default_fi_materials(4)))
        sim.add_impulse("center")
        g = sim.grid
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        res = gpu.execute_many(host, dict(
            boundaries=sim.topology.boundary_indices,
            materialIdx=sim.topology.material,
            neighbors=sim._nbrs_guarded, betaTable=sim.table.beta,
            prev1_h=sim.curr, prev2_h=sim.prev, lambda_h=g.courant,
            Nx_h=g.nx, NxNy_h=g.nx * g.ny), sim._size_env(), steps=steps,
            rotations=[("prev2_h", "prev1_h", "__out__")])
        np.testing.assert_allclose(
            res.buffers["final:prev1_h"][:sim._N], ref.curr[:ref._N],
            atol=1e-15)

    def test_fd_mm_six_steps_match_reference(self, problem):
        from repro.acoustics import RoomSimulation, SimConfig
        from repro.acoustics.geometry import DomeRoom, Room
        steps = 6
        ref = self._ref(problem, "fd_mm", steps)
        sim = RoomSimulation(SimConfig(room=Room(problem["g"], DomeRoom()),
                                       scheme="fd_mm", backend="numpy",
                                       materials=default_fd_materials(4)))
        sim.add_impulse("center")
        g = sim.grid
        K = sim.topology.num_boundary_points
        host = compile_host(two_kernel_host("fd_mm", "double", 3).program,
                            "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        res = gpu.execute_many(host, dict(
            boundaries=sim.topology.boundary_indices,
            materialIdx=sim.topology.material,
            neighbors=sim._nbrs_guarded, betaTable=sim.table.beta,
            BI_h=sim.table.BI.reshape(-1), DI_h=sim.table.DI.reshape(-1),
            F_h=sim.table.F.reshape(-1), D_h=sim.table.D.reshape(-1),
            g1_h=sim.g1, v2_h=sim.v2, v1_h=sim.v1, K=K,
            prev1_h=sim.curr, prev2_h=sim.prev, lambda_h=g.courant,
            Nx_h=g.nx, NxNy_h=g.nx * g.ny), sim._size_env(), steps=steps,
            rotations=[("prev2_h", "prev1_h", "__out__"),
                       ("v2_h", "v1_h")])
        np.testing.assert_allclose(
            res.buffers["final:prev1_h"][:sim._N], ref.curr[:ref._N],
            atol=1e-15)
        np.testing.assert_allclose(res.buffers["final:g1_h"], ref.g1,
                                   atol=1e-15)

    def test_single_name_cycle_is_identity(self, problem):
        """A one-element rotation cycle must behave exactly like no
        rotation for that name."""
        from repro.acoustics import RoomSimulation, SimConfig
        from repro.acoustics.geometry import DomeRoom, Room
        sim = RoomSimulation(SimConfig(room=Room(problem["g"], DomeRoom()),
                                       scheme="fi_mm", backend="numpy",
                                       materials=default_fi_materials(4)))
        g = sim.grid
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        inputs = dict(boundaries=sim.topology.boundary_indices,
                      materialIdx=sim.topology.material,
                      neighbors=sim._nbrs_guarded,
                      betaTable=sim.table.beta, prev1_h=sim.curr,
                      prev2_h=sim.prev, lambda_h=g.courant, Nx_h=g.nx,
                      NxNy_h=g.nx * g.ny)
        a = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            host, inputs, sim._size_env(), 3, rotations=[("prev1_h",)])
        b = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            host, inputs, sim._size_env(), 3, rotations=None)
        np.testing.assert_array_equal(np.asarray(a.result),
                                      np.asarray(b.result))
        np.testing.assert_array_equal(a.buffers["final:prev1_h"],
                                      b.buffers["final:prev1_h"])

    def test_unknown_rotation_name_is_typed_error(self, problem):
        from repro.gpu import ClInvalidValue
        table = MaterialTable.from_fi(default_fi_materials(4))
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        with pytest.raises(ClInvalidValue) as ei:
            gpu.execute_many(host, fi_mm_inputs(problem, table),
                             fi_mm_sizes(problem, table), steps=2,
                             rotations=[("prev2_h", "not_a_param")])
        msg = str(ei.value)
        assert "not_a_param" in msg
        assert "prev1_h" in msg      # the rotatable names are listed
        assert "__out__" in ei.value.context["available"]

    def test_final_bindings_deterministic_across_runs(self, problem):
        table = MaterialTable.from_fi(default_fi_materials(4))
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        rot = [("prev2_h", "prev1_h", "__out__")]
        runs = []
        for _ in range(2):
            res = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
                host, fi_mm_inputs(problem, table),
                fi_mm_sizes(problem, table), steps=5, rotations=rot)
            runs.append(res)
        a, b = runs
        finals_a = sorted(n for n in a.buffers if n.startswith("final:"))
        finals_b = sorted(n for n in b.buffers if n.startswith("final:"))
        assert finals_a == finals_b
        for n in finals_a:
            np.testing.assert_array_equal(a.buffers[n], b.buffers[n])

    def test_transfers_amortised(self, problem):
        """Iterative execution uploads once: transfer events do not scale
        with the number of steps, kernel events do."""
        from repro.acoustics import RoomSimulation, SimConfig
        from repro.acoustics.geometry import DomeRoom, Room
        sim = RoomSimulation(SimConfig(room=Room(problem["g"], DomeRoom()),
                                       scheme="fi_mm", backend="numpy",
                                       materials=default_fi_materials(4)))
        g = sim.grid
        host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = dict(boundaries=sim.topology.boundary_indices,
                      materialIdx=sim.topology.material,
                      neighbors=sim._nbrs_guarded,
                      betaTable=sim.table.beta, prev1_h=sim.curr,
                      prev2_h=sim.prev, lambda_h=g.courant, Nx_h=g.nx,
                      NxNy_h=g.nx * g.ny)
        rot = [("prev2_h", "prev1_h", "__out__")]
        r1 = gpu.execute_many(host, inputs, sim._size_env(), 1, rot)
        r8 = gpu.execute_many(host, inputs, sim._size_env(), 8, rot)
        transfers1 = sum(1 for e in r1.events if e.kind != "kernel")
        transfers8 = sum(1 for e in r8.events if e.kind != "kernel")
        kernels8 = sum(1 for e in r8.events if e.kind == "kernel")
        assert transfers1 == transfers8
        assert kernels8 == 16
