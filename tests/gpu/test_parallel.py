"""Multi-process shard executor: bit-identity, overlap, dead-worker recovery.

Every test here runs real OS processes (spawn start method) — the
fixtures reuse the small grid of ``test_multi`` so each case stays in
the seconds range.
"""

import numpy as np
import pytest

from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import (MaterialTable, default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.sim import RoomSimulation, SimConfig
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (ClInvalidValue, MultiGPU, NVIDIA_TITAN_BLACK,
                       ParallelMultiGPU, ShardLost, VirtualGPU)

STEPS = 7
ROT_FI = [("prev2_h", "prev1_h", "__out__")]
ROT_FD = [("prev2_h", "prev1_h", "__out__"), ("v2_h", "v1_h")]


@pytest.fixture(scope="module")
def grid():
    return Grid3D(14, 12, 10)


@pytest.fixture(scope="module")
def topo(grid):
    return build_topology(Room(grid, DomeRoom()), num_materials=4)


def _states(grid, topo, seed=5):
    rng = np.random.default_rng(seed)
    N = grid.num_points
    guard = grid.nx * grid.ny
    ins = topo.inside.reshape(-1)

    def state():
        a = np.zeros(N + guard)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    return state(), state()


@pytest.fixture(scope="module")
def fi_mm(grid, topo):
    g = grid
    N = g.num_points
    guard = g.nx * g.ny
    prev, curr = _states(g, topo)
    table = MaterialTable.from_fi(default_fi_materials(4))
    inputs = dict(boundaries=topo.boundary_indices, materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=curr, prev2_h=prev,
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    return dict(host=host, inputs=inputs, sizes=sizes, N=N,
                spec=("fi_mm", "double", None))


@pytest.fixture(scope="module")
def fd_mm(grid, topo, fi_mm):
    table = MaterialTable.from_fd(default_fd_materials(4), 3)
    K = topo.num_boundary_points
    rng = np.random.default_rng(8)
    inputs = dict(fi_mm["inputs"])
    inputs.update(betaTable=table.beta, BI_h=table.BI.reshape(-1),
                  DI_h=table.DI.reshape(-1), F_h=table.F.reshape(-1),
                  D_h=table.D.reshape(-1),
                  g1_h=rng.standard_normal(3 * K),
                  v2_h=rng.standard_normal(3 * K),
                  v1_h=np.zeros(3 * K), K=K)
    host = compile_host(two_kernel_host("fd_mm", "double", 3).program, "ac")
    return dict(host=host, inputs=inputs, sizes=dict(fi_mm["sizes"]),
                N=fi_mm["N"], spec=("fd_mm", "double", 3))


def _ref(case, rotations):
    return VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
        case["host"], case["inputs"], case["sizes"], STEPS,
        rotations=rotations)


class TestParallelBitIdentity:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_fi_mm_matches_single_and_serial(self, fi_mm, shards):
        ref = _ref(fi_mm, ROT_FI)
        serial = MultiGPU(f"TitanBlack:{shards}").execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        par = ParallelMultiGPU(f"TitanBlack:{shards}",
                               program_spec=fi_mm["spec"]).execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        N = fi_mm["N"]
        assert np.array_equal(par.result[:N], np.asarray(ref.result)[:N])
        assert np.array_equal(par.buffers["final:prev1_h"][:N],
                              serial.buffers["final:prev1_h"][:N])
        assert par.overlap is not None
        assert serial.overlap is None

    def test_fd_mm_branch_state_matches(self, fd_mm):
        ref = _ref(fd_mm, ROT_FD)
        par = ParallelMultiGPU("TitanBlack:2",
                               program_spec=fd_mm["spec"]).execute_many(
            fd_mm["host"], fd_mm["inputs"], fd_mm["sizes"], STEPS,
            rotations=ROT_FD)
        N = fd_mm["N"]
        assert np.array_equal(par.result[:N], np.asarray(ref.result)[:N])
        for name in ("g1_h", "v1_h", "v2_h"):
            assert np.array_equal(par.buffers[f"final:{name}"],
                                  ref.buffers[f"final:{name}"])


class TestOverlapReport:
    def test_interior_boundary_split_and_model(self, fi_mm, grid):
        par = ParallelMultiGPU("TitanBlack:2", program_spec=fi_mm["spec"])
        res = par.execute_many(fi_mm["host"], fi_mm["inputs"],
                               fi_mm["sizes"], STEPS, rotations=ROT_FI)
        ov = res.overlap
        assert ov["executor"] == "parallel"
        assert ov["shards"] == 2 and ov["steps"] == STEPS
        plane = grid.nx * grid.ny
        for p in ov["per_shard"]:
            # the footprint comes from the kernel's own shift-op IR: one
            # z-plane on each side for the 7-point SLF stencil
            assert p["mode"] == "overlap"
            assert p["footprint"] == (plane, plane)
            assert p["interior_model_ms"] > 0
            assert p["boundary_model_ms"] > 0
            assert p["hidden_model_ms"] + p["exposed_model_ms"] == \
                pytest.approx(p["halo_model_ms"])
        m = ov["modelled"]
        assert m["step_ms"] <= m["bsp_step_ms"]
        assert 0.0 <= m["hidden_fraction"] <= 1.0
        assert m["hidden_ms"] > 0
        meas = ov["measured"]
        assert meas["wall_total_s"] > meas["loop_wall_s"] > 0
        assert 0.0 <= meas["hidden_fraction"] <= 1.0

    def test_halo_pricing_matches_worker_schedule(self, fi_mm):
        # steps-1 exchange phases: step 0 consumes the pre-filled halos
        par = ParallelMultiGPU("TitanBlack:2",
                               program_spec=fi_mm["spec"]).execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        serial = MultiGPU("TitanBlack:2").execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        assert par.halo_time_ms() == pytest.approx(
            serial.halo_time_ms() * (STEPS - 1) / STEPS)
        assert all(e.kind == "halo" for e in par.halo_events)


class TestFallbacks:
    def test_no_program_spec_falls_back_serial(self, fi_mm):
        par = ParallelMultiGPU("TitanBlack:2")
        assert par._parallel_eligible() is not None
        res = par.execute_many(fi_mm["host"], fi_mm["inputs"],
                               fi_mm["sizes"], STEPS, rotations=ROT_FI)
        ref = _ref(fi_mm, ROT_FI)
        N = fi_mm["N"]
        assert np.array_equal(res.result[:N], np.asarray(ref.result)[:N])
        assert res.overlap is None

    def test_receivers_require_parallel_path(self, fi_mm):
        par = ParallelMultiGPU("TitanBlack:2")
        with pytest.raises(ClInvalidValue):
            par.execute_many(fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"],
                             STEPS, rotations=ROT_FI, receivers={"mic": 0})

    def test_single_shard_degenerates(self, fi_mm):
        par = ParallelMultiGPU(("TitanBlack",), program_spec=fi_mm["spec"])
        res = par.execute_many(fi_mm["host"], fi_mm["inputs"],
                               fi_mm["sizes"], STEPS, rotations=ROT_FI)
        ref = _ref(fi_mm, ROT_FI)
        N = fi_mm["N"]
        assert np.array_equal(res.result[:N], np.asarray(ref.result)[:N])


class TestReceivers:
    def test_in_worker_sampling_matches_per_step(self, fi_mm, grid):
        # one receiver per shard's slab
        lo_idx = 3 * grid.nx * grid.ny + 5
        hi_idx = 8 * grid.nx * grid.ny + 5
        par = ParallelMultiGPU("TitanBlack:2",
                               program_spec=fi_mm["spec"]).execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI, receivers={"lo": lo_idx, "hi": hi_idx})
        # per-step reference: run serially, sampling after each step
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                  for k, v in fi_mm["inputs"].items()}
        expect = {"lo": [], "hi": []}
        for _ in range(STEPS):
            res = gpu.execute(fi_mm["host"], inputs, fi_mm["sizes"])
            nxt = np.asarray(res.result)
            prev1 = inputs["prev1_h"].copy()
            inputs["prev2_h"][:] = prev1
            inputs["prev1_h"][:len(nxt)] = nxt
            expect["lo"].append(inputs["prev1_h"][lo_idx])
            expect["hi"].append(inputs["prev1_h"][hi_idx])
        got = par.overlap["receivers"]
        assert np.array_equal(got["lo"], np.asarray(expect["lo"]))
        assert np.array_equal(got["hi"], np.asarray(expect["hi"]))


class TestDeadWorkerRecovery:
    def test_killed_worker_raises_shardlost(self, fi_mm):
        par = ParallelMultiGPU("TitanBlack:2", program_spec=fi_mm["spec"])
        par._test_kill = {1: 3}
        with pytest.raises(ShardLost) as err:
            par.execute_many(fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"],
                             STEPS, rotations=ROT_FI)
        assert err.value.shard == 1

    def test_without_device_preserves_type_and_spec(self, fi_mm):
        par = ParallelMultiGPU("TitanBlack:3", program_spec=fi_mm["spec"],
                               ring_depth=4)
        par._test_kill = {0: 1}
        survivors = par.without_device(0)
        assert isinstance(survivors, ParallelMultiGPU)
        assert survivors.program_spec == fi_mm["spec"]
        assert survivors.ring_depth == 4
        assert survivors._test_kill is None  # the kill knob does not carry
        assert len(survivors.devices) == 2
        res = survivors.execute_many(fi_mm["host"], fi_mm["inputs"],
                                     fi_mm["sizes"], STEPS,
                                     rotations=ROT_FI)
        ref = _ref(fi_mm, ROT_FI)
        N = fi_mm["N"]
        assert np.array_equal(res.result[:N], np.asarray(ref.result)[:N])


def _sim(scheme, devices=None, steps=6, **kw):
    cfg = SimConfig(room=Room(Grid3D(14, 12, 10), DomeRoom()),
                    scheme=scheme, backend="virtual_gpu", devices=devices,
                    **kw)
    sim = RoomSimulation(cfg)
    sim.add_impulse("center")
    sim.add_receiver("mic", (3, 3, 3))
    sim.run(steps)
    return sim


class TestSimParallel:
    @pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
    def test_bulk_parallel_bit_identical(self, scheme):
        ref = _sim(scheme)
        par = _sim(scheme, devices="TitanBlack:2", parallel=True)
        assert np.array_equal(par.curr, ref.curr)
        assert np.array_equal(par.prev, ref.prev)
        assert np.array_equal(par.g1, ref.g1)
        assert np.array_equal(par.v1, ref.v1)
        assert np.array_equal(par.receiver_signal("mic"),
                              ref.receiver_signal("mic"))
        assert par.time_step == ref.time_step
        assert par.last_overlap["executor"] == "parallel"
        assert all(p["mode"] == "overlap"
                   for p in par.last_overlap["per_shard"])

    def test_single_precision_bit_identical(self):
        ref = _sim("fi_mm", precision="single")
        par = _sim("fi_mm", devices="TitanBlack:2", parallel=True,
                   precision="single")
        assert par.curr.dtype == np.float32
        assert np.array_equal(par.curr, ref.curr)

    def test_segments_respect_periodic_hooks(self):
        ref = _sim("fi_mm", steps=8, checkpoint_interval=3,
                   health_interval=2)
        par = _sim("fi_mm", devices="TitanBlack:2", parallel=True, steps=8,
                   checkpoint_interval=3, health_interval=2)
        assert np.array_equal(par.curr, ref.curr)
        assert (par.last_checkpoint.time_step
                == ref.last_checkpoint.time_step == 6)

    def test_killed_shard_process_recovers_bit_identically(self):
        ref = _sim("fi_mm", steps=8)
        cfg = SimConfig(room=Room(Grid3D(14, 12, 10), DomeRoom()),
                        scheme="fi_mm", backend="virtual_gpu",
                        devices="TitanBlack:2", parallel=True,
                        checkpoint_interval=2)
        sim = RoomSimulation(cfg)
        sim.add_impulse("center")
        sim.add_receiver("mic", (3, 3, 3))
        # worker 1 SIGKILLs itself at step 1 of the first bulk segment
        # (the kill step indexes into the segment's own step loop)
        sim._gpu._test_kill = {1: 1}
        sim.run(8)
        assert np.array_equal(sim.curr, ref.curr)
        assert sim.time_step == 8
        # the dead worker's device left the pool; the survivor pool is
        # still the parallel executor type (it just degenerates to the
        # per-step path at one shard)
        assert isinstance(sim._gpu, ParallelMultiGPU)
        assert len(sim.devices) == 1
