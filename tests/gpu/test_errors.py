"""Typed OpenCL error model: hierarchy, validation, capacity enforcement."""

import dataclasses

import numpy as np
import pytest

from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import MaterialTable, default_fi_materials
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (CL_STATUS_TABLE, ClError, ClInvalidBufferSize,
                       ClInvalidKernelArgs, ClInvalidValue,
                       ClMemAllocationFailure, NVIDIA_TITAN_BLACK,
                       VirtualGPU)
from repro.gpu.runtime import RuntimeError_


@pytest.fixture(scope="module")
def problem():
    g = Grid3D(14, 12, 10)
    topo = build_topology(Room(g, DomeRoom()), num_materials=4)
    rng = np.random.default_rng(5)
    N = g.num_points
    guard = g.nx * g.ny

    def state():
        a = np.zeros(N + guard)
        ins = topo.inside.reshape(-1)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    table = MaterialTable.from_fi(default_fi_materials(4))
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    inputs = dict(boundaries=topo.boundary_indices, materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=state(), prev2_h=state(),
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    return dict(host=host, inputs=inputs, sizes=sizes, N=N, guard=guard)


class TestHierarchy:
    def test_status_codes_match_opencl(self):
        assert CL_STATUS_TABLE["CL_OUT_OF_RESOURCES"].status_code == -5
        assert CL_STATUS_TABLE["CL_MEM_OBJECT_ALLOCATION_FAILURE"] \
            .status_code == -4
        assert CL_STATUS_TABLE["CL_INVALID_KERNEL_ARGS"].status_code == -52
        assert CL_STATUS_TABLE["CL_INVALID_BUFFER_SIZE"].status_code == -61

    def test_every_class_subclasses_clerror(self):
        for cls in CL_STATUS_TABLE.values():
            assert issubclass(cls, ClError)

    def test_message_carries_status_name(self):
        err = ClMemAllocationFailure("out of memory", buffer="d_x")
        assert "CL_MEM_OBJECT_ALLOCATION_FAILURE" in str(err)
        assert err.context["buffer"] == "d_x"
        assert not err.injected

    def test_runtime_error_alias_still_catches_everything(self):
        # backwards compatibility: RuntimeError_ is the hierarchy root
        assert RuntimeError_ is ClError
        with pytest.raises(RuntimeError_):
            raise ClInvalidValue("x")


class TestValidation:
    def test_missing_size_names_var_and_consumer(self, problem):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        sizes = {k: v for k, v in problem["sizes"].items() if k != "K"}
        with pytest.raises(ClInvalidValue) as ei:
            gpu.execute(problem["host"], problem["inputs"], sizes)
        msg = str(ei.value)
        assert "'K'" in msg
        # the consumer (a buffer or the boundary launch) is named
        assert "buffer" in msg or "launch" in msg

    def test_missing_size_in_execute_many(self, problem):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        sizes = {k: v for k, v in problem["sizes"].items() if k != "M"}
        with pytest.raises(ClInvalidValue, match="'M'"):
            gpu.execute_many(problem["host"], problem["inputs"], sizes,
                             steps=2)

    def test_missing_input_names_host_param(self, problem):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = {k: v for k, v in problem["inputs"].items()
                  if k != "betaTable"}
        with pytest.raises(ClInvalidKernelArgs, match="betaTable"):
            gpu.execute(problem["host"], inputs, problem["sizes"])

    def test_missing_scalar_input_detected(self, problem):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = {k: v for k, v in problem["inputs"].items()
                  if k != "lambda_h"}
        with pytest.raises(ClInvalidKernelArgs, match="lambda_h"):
            gpu.execute(problem["host"], inputs, problem["sizes"])


class TestTransferValidation:
    def test_oversized_host_array_is_typed_error(self, problem):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = dict(problem["inputs"])
        inputs["prev1_h"] = np.zeros(problem["N"] + problem["guard"] + 7)
        with pytest.raises(ClInvalidBufferSize) as ei:
            gpu.execute(problem["host"], inputs, problem["sizes"])
        msg = str(ei.value)
        assert "prev1_h" in msg              # the host param
        assert "NP" in msg                   # the symbolic count
        assert ei.value.context["host_param"] == "prev1_h"

    def test_shortfall_beyond_guard_plane_is_error(self, problem):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = dict(problem["inputs"])
        inputs["prev1_h"] = np.zeros(problem["N"] - 1)  # guard + 1 short
        with pytest.raises(ClInvalidBufferSize, match="prev1_h"):
            gpu.execute(problem["host"], inputs, problem["sizes"])

    def test_shortfall_within_guard_plane_is_padded(self, problem):
        """An unpadded N-element state array is the documented tolerance:
        the guard plane is zero-filled, not silently truncated."""
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        inputs = dict(problem["inputs"])
        inputs["prev1_h"] = np.asarray(problem["inputs"]["prev1_h"])[
            :problem["N"]].copy()
        res = gpu.execute(problem["host"], inputs, problem["sizes"])
        full = gpu.execute(problem["host"], problem["inputs"],
                           problem["sizes"])
        np.testing.assert_array_equal(np.asarray(res.result),
                                      np.asarray(full.result))


class TestCapacityEnforcement:
    def test_global_memory_exhaustion(self, problem):
        # the fd_mm plan spreads state over many buffers, so a capacity
        # just below the true total trips the global check (not the
        # single-allocation cap)
        from repro.acoustics.materials import default_fd_materials
        table = MaterialTable.from_fd(default_fd_materials(4), 3)
        host = compile_host(two_kernel_host("fd_mm", "double", 3).program,
                            "ac")
        K = problem["sizes"]["K"]
        inputs = dict(problem["inputs"], betaTable=table.beta,
                      BI_h=table.BI.reshape(-1), DI_h=table.DI.reshape(-1),
                      F_h=table.F.reshape(-1), D_h=table.D.reshape(-1),
                      g1_h=np.zeros(3 * K), v2_h=np.zeros(3 * K),
                      v1_h=np.zeros(3 * K), K=K)
        unlimited = VirtualGPU(dataclasses.replace(NVIDIA_TITAN_BLACK,
                                                   global_mem_bytes=0))
        full = unlimited.execute(host, inputs, problem["sizes"])
        total = sum(b.nbytes for b in full.buffers.values())
        tiny = dataclasses.replace(NVIDIA_TITAN_BLACK,
                                   global_mem_bytes=total - 1)
        gpu = VirtualGPU(tiny)
        with pytest.raises(ClMemAllocationFailure) as ei:
            gpu.execute(host, inputs, problem["sizes"])
        ctx = ei.value.context
        assert ctx["capacity_bytes"] == total - 1
        assert ctx["requested_bytes"] + ctx["in_use_bytes"] > total - 1
        assert not ei.value.injected         # real accounting, not a fault

    def test_single_allocation_cap(self, problem):
        # max_alloc = global/4: one state buffer alone exceeds it
        state_bytes = (problem["N"] + problem["guard"]) * 8
        spec = dataclasses.replace(NVIDIA_TITAN_BLACK,
                                   global_mem_bytes=state_bytes * 2)
        gpu = VirtualGPU(spec)
        with pytest.raises(ClInvalidBufferSize, match="MAX_MEM_ALLOC"):
            gpu.execute(problem["host"], problem["inputs"], problem["sizes"])

    def test_zero_capacity_disables_enforcement(self, problem):
        spec = dataclasses.replace(NVIDIA_TITAN_BLACK, global_mem_bytes=0)
        gpu = VirtualGPU(spec)
        res = gpu.execute(problem["host"], problem["inputs"],
                          problem["sizes"])
        assert res.result is not None

    def test_paper_devices_fit_paper_rooms(self, problem):
        """Default paper-device capacities never interfere with the
        reproduction workloads (opt-in guarantee)."""
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        res = gpu.execute(problem["host"], problem["inputs"],
                          problem["sizes"])
        assert res.result is not None
