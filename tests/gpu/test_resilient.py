"""Recovery policies: retry/backoff, degradation, fallbacks, policy log."""

import dataclasses

import numpy as np
import pytest

from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import MaterialTable, default_fi_materials
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (AMD_HD7970, ClInvalidKernelArgs, ClInvalidValue,
                       FaultPlan, FaultSpec, NVIDIA_TITAN_BLACK,
                       ResilientGPU, RetryPolicy, VirtualGPU)


@pytest.fixture(scope="module")
def problem():
    g = Grid3D(14, 12, 10)
    topo = build_topology(Room(g, DomeRoom()), num_materials=4)
    rng = np.random.default_rng(5)
    N = g.num_points
    guard = g.nx * g.ny

    def state():
        a = np.zeros(N + guard)
        ins = topo.inside.reshape(-1)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    table = MaterialTable.from_fi(default_fi_materials(4))
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    inputs = dict(boundaries=topo.boundary_indices, materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=state(), prev2_h=state(),
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    return dict(host=host, inputs=inputs, sizes=sizes, N=N)


def run(gpu, p, **kw):
    return gpu.execute(p["host"], p["inputs"], p["sizes"], **kw)


class TestRetry:
    def test_transient_fault_retried_with_modelled_backoff(self, problem):
        plan = FaultPlan([FaultSpec("launch_abort", steps=(0,))], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(backoff_ms=0.25))
        res = run(gpu, problem, fault_step=0)
        # step-targeted faults fire once per launch site: both the volume
        # and the boundary kernel abort once, then the run recovers
        actions = [o.action for o in gpu.log]
        assert actions == ["retry", "retry", "recovered"]
        assert gpu.log[0].backoff_ms == 0.25
        # the modelled waits are profiling events, outside kernel time
        assert res.overhead_time_ms() == pytest.approx(0.25 + 0.5)
        clean = run(VirtualGPU(NVIDIA_TITAN_BLACK), problem)
        assert res.kernel_time_ms() == clean.kernel_time_ms()
        np.testing.assert_array_equal(np.asarray(res.result),
                                      np.asarray(clean.result))

    def test_backoff_grows_exponentially(self, problem):
        plan = FaultPlan([FaultSpec("device_lost", rate=1.0,
                                    max_count=3)], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(max_attempts=4, backoff_ms=0.1,
                                       backoff_factor=2.0))
        res = run(gpu, problem)
        waits = [o.backoff_ms for o in gpu.log if o.action == "retry"]
        assert waits == [0.1, 0.2, 0.4]
        assert res.overhead_time_ms() == pytest.approx(0.7)

    def test_programming_errors_are_not_retried(self, problem):
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK))
        bad = {k: v for k, v in problem["inputs"].items() if k != "betaTable"}
        with pytest.raises(ClInvalidKernelArgs):
            gpu.execute(problem["host"], bad, problem["sizes"])
        assert [o.action for o in gpu.log] == ["raise"]
        with pytest.raises(ClInvalidValue):
            gpu.execute(problem["host"], problem["inputs"], {"N": 1})


class TestDegradeAndFallback:
    def test_persistent_launch_abort_degrades_workgroup(self, problem):
        plan = FaultPlan([FaultSpec("launch_abort", rate=1.0,
                                    max_count=4)], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(max_attempts=4, backoff_ms=0.01))
        res = run(gpu, problem)
        assert any(o.action == "degrade_launch" for o in gpu.log)
        # the degraded stage runs with the smallest workgroup
        kernels = [e for e in res.events if e.kind == "kernel"]
        assert all(e.timing.workgroup == NVIDIA_TITAN_BLACK.warp_size
                   for e in kernels)
        clean = run(VirtualGPU(NVIDIA_TITAN_BLACK), problem)
        np.testing.assert_array_equal(np.asarray(res.result),
                                      np.asarray(clean.result))

    def test_requeue_on_fallback_device(self, problem):
        # the primary persistently loses the device; the job re-queues on
        # the AMD board and completes there
        plan = FaultPlan([FaultSpec("device_lost", rate=1.0)], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(max_attempts=2, backoff_ms=0.01),
                           fallback_devices=[AMD_HD7970])
        res = run(gpu, problem)
        assert any(o.action == "fallback_device" for o in gpu.log)
        clean = run(VirtualGPU(AMD_HD7970), problem)
        np.testing.assert_array_equal(np.asarray(res.result),
                                      np.asarray(clean.result))
        assert res.kernel_time_ms() == clean.kernel_time_ms()

    def test_oversized_buffer_requeues_on_larger_device(self, problem):
        state_bytes = (problem["sizes"]["NP"]) * 8
        small = dataclasses.replace(NVIDIA_TITAN_BLACK, name="small",
                                    global_mem_bytes=state_bytes * 2)
        gpu = ResilientGPU(VirtualGPU(small),
                           fallback_devices=[NVIDIA_TITAN_BLACK])
        res = run(gpu, problem)
        assert any(o.action == "fallback_device" for o in gpu.log)
        assert res.result is not None

    def test_host_fallback_charges_no_gpu_time(self, problem):
        plan = FaultPlan([FaultSpec("device_lost", rate=1.0)], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(max_attempts=2, backoff_ms=0.01))
        res = run(gpu, problem)
        assert any(o.action == "host_fallback" for o in gpu.log)
        assert res.kernel_time_ms() == 0.0
        assert res.transfer_time_ms() == 0.0
        assert any(e.kind == "host_kernel" for e in res.events)
        clean = run(VirtualGPU(NVIDIA_TITAN_BLACK), problem)
        np.testing.assert_array_equal(np.asarray(res.result),
                                      np.asarray(clean.result))

    def test_host_fallback_disabled_surfaces_error(self, problem):
        from repro.gpu import ClDeviceLost
        plan = FaultPlan([FaultSpec("device_lost", rate=1.0)], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(max_attempts=2, backoff_ms=0.01),
                           host_fallback=False)
        with pytest.raises(ClDeviceLost):
            run(gpu, problem)
        assert gpu.log[-1].action == "raise"


class TestTransparency:
    """Opt-in guarantee: without faults, the wrapper is a no-op."""

    def test_identical_results_and_times_without_faults(self, problem):
        plain = run(VirtualGPU(NVIDIA_TITAN_BLACK), problem)
        wrapped = run(ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK)), problem)
        np.testing.assert_array_equal(np.asarray(plain.result),
                                      np.asarray(wrapped.result))
        assert plain.kernel_time_ms() == wrapped.kernel_time_ms()
        assert plain.transfer_time_ms() == wrapped.transfer_time_ms()
        assert wrapped.overhead_time_ms() == 0.0

    def test_execute_many_supported(self, problem):
        plan = FaultPlan([FaultSpec("launch_abort", steps=(1,))], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan))
        clean = VirtualGPU(NVIDIA_TITAN_BLACK)
        rot = [("prev2_h", "prev1_h", "__out__")]
        a = gpu.execute_many(problem["host"], problem["inputs"],
                             problem["sizes"], 4, rotations=rot)
        b = clean.execute_many(problem["host"], problem["inputs"],
                               problem["sizes"], 4, rotations=rot)
        assert gpu.recovered_faults() >= 1
        np.testing.assert_array_equal(a.buffers["final:prev1_h"],
                                      b.buffers["final:prev1_h"])
