"""Multi-device domain decomposition: bit-identity, halo pricing, recovery."""

import numpy as np
import pytest

from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import (MaterialTable, default_fd_materials,
                                       default_fi_materials)
from repro.acoustics.sim import RoomSimulation, SimConfig
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (AMD_HD7970, AMD_R9_295X2, ClInvalidValue, DeviceSpec,
                       FaultPlan, FaultSpec, MultiGPU, NVIDIA_TITAN_BLACK,
                       ShardLost, VirtualGPU, decompose, peer_connected,
                       resolve_device)

STEPS = 7
ROT_FI = [("prev2_h", "prev1_h", "__out__")]
ROT_FD = [("prev2_h", "prev1_h", "__out__"), ("v2_h", "v1_h")]


@pytest.fixture(scope="module")
def grid():
    return Grid3D(14, 12, 10)


@pytest.fixture(scope="module")
def topo(grid):
    return build_topology(Room(grid, DomeRoom()), num_materials=4)


def _states(grid, topo, seed=5):
    rng = np.random.default_rng(seed)
    N = grid.num_points
    guard = grid.nx * grid.ny
    ins = topo.inside.reshape(-1)

    def state():
        a = np.zeros(N + guard)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    return state(), state()


@pytest.fixture(scope="module")
def fi_mm(grid, topo):
    g = grid
    N = g.num_points
    guard = g.nx * g.ny
    prev, curr = _states(g, topo)
    table = MaterialTable.from_fi(default_fi_materials(4))
    inputs = dict(boundaries=topo.boundary_indices, materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=curr, prev2_h=prev,
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    return dict(host=host, inputs=inputs, sizes=sizes, N=N)


@pytest.fixture(scope="module")
def fd_mm(grid, topo, fi_mm):
    table = MaterialTable.from_fd(default_fd_materials(4), 3)
    K = topo.num_boundary_points
    rng = np.random.default_rng(8)
    inputs = dict(fi_mm["inputs"])
    inputs.update(betaTable=table.beta, BI_h=table.BI.reshape(-1),
                  DI_h=table.DI.reshape(-1), F_h=table.F.reshape(-1),
                  D_h=table.D.reshape(-1),
                  g1_h=rng.standard_normal(3 * K),
                  v2_h=rng.standard_normal(3 * K),
                  v1_h=np.zeros(3 * K), K=K)
    host = compile_host(two_kernel_host("fd_mm", "double", 3).program, "ac")
    return dict(host=host, inputs=inputs, sizes=dict(fi_mm["sizes"]),
                N=fi_mm["N"])


class TestDecompose:
    def test_balanced_split_covers_grid(self):
        shards = decompose(10, 168, resolve_device("TitanBlack:4"))
        assert [(s.z0, s.z1) for s in shards] == [(0, 3), (3, 6), (6, 8),
                                                 (8, 10)]
        assert sum(s.n_local for s in shards) == 10 * 168

    def test_more_shards_than_planes_rejected(self):
        with pytest.raises(ClInvalidValue):
            decompose(2, 168, resolve_device("TitanBlack:3"))


class TestResolveDevice:
    def test_none_gives_default_single(self):
        assert resolve_device(None) == (NVIDIA_TITAN_BLACK,)

    def test_spec_passthrough(self):
        assert resolve_device(AMD_HD7970) == (AMD_HD7970,)

    def test_paper_name(self):
        assert resolve_device("AMD7970") == (AMD_HD7970,)

    def test_shard_syntax_builds_same_board_pool(self):
        pool = resolve_device("RadeonR9:2")
        assert [d.name for d in pool] == ["RadeonR9#0", "RadeonR9#1"]
        assert peer_connected(pool[0], pool[1])

    def test_non_bridged_pool_shares_board_but_stages(self):
        pool = resolve_device("TitanBlack:2")
        # no interconnect advertised: halo exchange stages through host
        assert not peer_connected(pool[0], pool[1])

    def test_sequence_flattens(self):
        pool = resolve_device(["AMD7970", NVIDIA_TITAN_BLACK])
        assert [d.name for d in pool] == ["AMD7970", "TitanBlack"]

    def test_errors(self):
        with pytest.raises(ValueError):
            resolve_device("RadeonR9:x")
        with pytest.raises(ValueError):
            resolve_device([])
        with pytest.raises(TypeError):
            resolve_device(42)


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_execute_matches_single_device(self, fi_mm, shards):
        ref = VirtualGPU(NVIDIA_TITAN_BLACK).execute(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"])
        res = MultiGPU(f"RadeonR9:{shards}").execute(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"])
        assert np.array_equal(np.asarray(res.result),
                              np.asarray(ref.result)[:fi_mm["N"]])

    @pytest.mark.parametrize("shards", [2, 4])
    def test_execute_many_fi_mm(self, fi_mm, shards):
        ref = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        res = MultiGPU(f"RadeonR9:{shards}").execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        N = fi_mm["N"]
        assert np.array_equal(res.result[:N], np.asarray(ref.result)[:N])
        assert np.array_equal(res.buffers["final:prev1_h"][:N],
                              ref.buffers["final:prev1_h"][:N])

    @pytest.mark.parametrize("shards", [2, 4])
    def test_execute_many_fd_mm_branch_state(self, fd_mm, shards):
        ref = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            fd_mm["host"], fd_mm["inputs"], fd_mm["sizes"], STEPS,
            rotations=ROT_FD)
        res = MultiGPU(f"TitanBlack:{shards}").execute_many(
            fd_mm["host"], fd_mm["inputs"], fd_mm["sizes"], STEPS,
            rotations=ROT_FD)
        N = fd_mm["N"]
        assert np.array_equal(res.result[:N], np.asarray(ref.result)[:N])
        for name in ("g1_h", "v1_h", "v2_h"):
            assert np.array_equal(res.buffers[f"final:{name}"],
                                  ref.buffers[f"final:{name}"])

    def test_single_shard_pool_degenerates(self, fi_mm):
        ref = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        res = MultiGPU(("TitanBlack",)).execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        N = fi_mm["N"]
        assert np.array_equal(res.result[:N], np.asarray(ref.result)[:N])
        assert res.halo_time_ms() == 0.0

    def test_boundaryless_shard_drops_boundary_launch(self, fi_mm, grid,
                                                      topo):
        # keep only boundary points in the lower half of the grid: the
        # upper shard then has K_local == 0 and must run volume-only
        plane = grid.nx * grid.ny
        half = (grid.nz // 2) * plane
        bidx = topo.boundary_indices
        keep = bidx < half
        assert keep.any() and not keep.all()
        inputs = dict(fi_mm["inputs"])
        inputs["boundaries"] = bidx[keep]
        inputs["materialIdx"] = topo.material[keep]
        sizes = dict(fi_mm["sizes"], K=int(keep.sum()))
        ref = VirtualGPU(NVIDIA_TITAN_BLACK).execute(
            fi_mm["host"], inputs, sizes)
        res = MultiGPU("TitanBlack:2").execute(fi_mm["host"], inputs, sizes)
        assert np.array_equal(np.asarray(res.result),
                              np.asarray(ref.result)[:fi_mm["N"]])


class TestHaloPricing:
    def test_halo_time_nonzero_and_separate_from_kernel(self, fi_mm):
        res = MultiGPU("RadeonR9:2").execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        assert res.halo_time_ms() > 0
        assert res.kernel_time_ms() > 0
        # halo events are their own kind, never counted as kernel time
        assert all(e.kind == "halo" for e in res.halo_events)
        assert res.halo_bytes > 0

    def test_p2p_cheaper_than_staged(self, fi_mm):
        args = (fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS)
        p2p = MultiGPU("RadeonR9:2").execute_many(*args, rotations=ROT_FI)
        staged = MultiGPU("TitanBlack:2").execute_many(*args,
                                                       rotations=ROT_FI)
        assert p2p.halo_bytes == staged.halo_bytes
        # one hop over the 16 GB/s bridge vs two hops over host PCIe
        assert p2p.halo_time_ms() < staged.halo_time_ms()

    def test_kernel_time_is_critical_path(self, fi_mm):
        res = MultiGPU("RadeonR9:4").execute_many(
            fi_mm["host"], fi_mm["inputs"], fi_mm["sizes"], STEPS,
            rotations=ROT_FI)
        per = res.per_shard_kernel_time_ms()
        assert len(per) == 4
        assert res.kernel_time_ms() == max(per)


def _sim(scheme, devices=None, steps=6, grid=None, **kw):
    cfg = SimConfig(room=Room(grid or Grid3D(14, 12, 10), DomeRoom()),
                    scheme=scheme, backend="virtual_gpu", devices=devices,
                    **kw)
    sim = RoomSimulation(cfg)
    sim.add_impulse("center")
    sim.run(steps)
    return sim


class TestSimIntegration:
    @pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
    @pytest.mark.parametrize("devices", ["RadeonR9:2", "TitanBlack:4"])
    def test_sharded_sim_bit_identical(self, scheme, devices):
        ref = _sim(scheme)
        m = _sim(scheme, devices=devices)
        assert np.array_equal(m.curr, ref.curr)
        assert np.array_equal(m.g1, ref.g1)
        assert m.modelled_halo_time_ms > 0

    def test_shard_loss_recovers_bit_identically(self):
        faults = FaultPlan(
            [FaultSpec(kind="device_lost", steps=(3,), max_count=1)], seed=1)
        ref = _sim("fi_mm", devices="TitanBlack:2", steps=8)
        m = _sim("fi_mm", devices="TitanBlack:2", steps=8, faults=faults,
                 resilient=True, checkpoint_interval=2)
        assert np.array_equal(m.curr, ref.curr)
        assert m.time_step == ref.time_step == 8
        # the dead device was dropped from the pool
        assert len(m._gpu.devices) == 1
        assert len(m.devices) == 1
        assert faults.injected_kinds() == {"device_lost"}
        # the re-shard is recorded and pre-loss entries survive the
        # executor swap
        reshards = [o for o in m.policy_log if o.action == "reshard"]
        assert len(reshards) == 1
        assert reshards[0].error == "CL_DEVICE_LOST"
        assert reshards[0].device == "TitanBlack#0"

    def test_shard_loss_without_checkpoint_raises(self):
        faults = FaultPlan(
            [FaultSpec(kind="device_lost", steps=(2,), max_count=1)], seed=1)
        cfg = SimConfig(room=Room(Grid3D(14, 12, 10), DomeRoom()),
                        scheme="fi_mm", backend="virtual_gpu",
                        devices="TitanBlack:2", faults=faults, resilient=True)
        sim = RoomSimulation(cfg)
        sim.add_impulse("center")
        # step() bypasses run()'s checkpoint bootstrap: the loss escalates
        with pytest.raises(ShardLost):
            for _ in range(6):
                sim.step()

    def test_without_device_preserves_layout_params(self):
        m = MultiGPU("RadeonR9:3")
        survivors = m.without_device(1)
        assert [d.name for d in survivors.devices] == ["RadeonR9#0",
                                                       "RadeonR9#2"]
        assert survivors.radius == m.radius
        assert survivors.field_params == m.field_params
        assert [o.action for o in survivors.policy_logs()] == ["reshard"]
        with pytest.raises(ClInvalidValue):
            MultiGPU(("TitanBlack",)).without_device(0)
