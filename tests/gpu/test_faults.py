"""Seeded fault-injection campaigns against the virtual runtime.

The acceptance bar: an FI-MM simulation with >= 4 fault classes injected
must see every fault either *recovered* (retry/fallback, visible in the
policy log) or *surfaced* as the correct typed exception — never a
silent wrong answer — and with retries enabled the final pressure field
is bit-identical (f64) to a fault-free run.
"""

import numpy as np
import pytest

from repro.acoustics import RoomSimulation, SimConfig
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.materials import default_fi_materials
from repro.gpu import (ClDeviceLost, ClMemAllocationFailure,
                       ClOutOfResources, ClTransferCorrupted, FaultPlan,
                       FaultSpec)


def make_sim(faults=None, resilient=False, steps_cfg=None):
    cfg = SimConfig(room=Room(Grid3D(14, 12, 10), DomeRoom()),
                    scheme="fi_mm", backend="virtual_gpu",
                    precision="double", materials=default_fi_materials(4),
                    faults=faults, resilient=resilient,
                    **(steps_cfg or {}))
    sim = RoomSimulation(cfg)
    sim.add_impulse("center")
    sim.add_receiver("mic", "center")
    return sim


CAMPAIGN_SPECS = [
    FaultSpec("alloc", rate=0.02),
    FaultSpec("transfer_fail", rate=0.02),
    FaultSpec("transfer_corrupt", rate=0.03),
    FaultSpec("launch_abort", steps=(2, 5)),
    FaultSpec("device_lost", steps=(3,)),
]
STEPS = 10


class TestCampaign:
    def test_four_fault_classes_recovered_bit_identical(self):
        ref = make_sim()
        ref.run(STEPS)

        plan = FaultPlan(CAMPAIGN_SPECS, seed=11)
        sim = make_sim(faults=plan, resilient=True)
        sim.run(STEPS)

        # >= 4 distinct fault classes actually fired
        assert len(plan.injected_kinds()) >= 4, plan.records
        # every injected fault shows up in the policy log as a recovery
        # action, and nothing was surfaced to the caller
        log = sim.policy_log
        assert log, "faults were injected but no policy decisions logged"
        assert all(o.action != "raise" for o in log)
        # each injection aborts exactly one attempt, so every fault record
        # has a matching recovery decision in the log
        failures = [o for o in log if o.action in
                    ("retry", "degrade_launch", "fallback_device",
                     "host_fallback")]
        assert len(failures) == len(plan.records)
        # never a silent wrong answer: bit-identical to the fault-free run
        np.testing.assert_array_equal(sim.curr, ref.curr)
        np.testing.assert_array_equal(sim.receiver_signal("mic"),
                                      ref.receiver_signal("mic"))

    def test_campaign_is_deterministic(self):
        records = []
        for _ in range(2):
            plan = FaultPlan(CAMPAIGN_SPECS, seed=11)
            sim = make_sim(faults=plan, resilient=True)
            sim.run(STEPS)
            records.append([(r.kind, r.site, r.step) for r in plan.records])
        assert records[0] == records[1]

    def test_retry_overhead_is_visible_not_in_kernel_time(self):
        plan = FaultPlan([FaultSpec("launch_abort", steps=(1,))], seed=3)
        sim = make_sim(faults=plan, resilient=True)
        ref = make_sim()
        sim.run(3)
        ref.run(3)
        # backoff was modelled into the events, not into kernel time
        assert any(o.backoff_ms > 0 for o in sim.policy_log)
        assert sim.modelled_gpu_time_ms == ref.modelled_gpu_time_ms


class TestTypedSurfacing:
    """Without recovery, each fault class surfaces as its OpenCL type."""

    def run_with(self, spec, seed=0):
        plan = FaultPlan([spec], seed=seed)
        sim = make_sim(faults=plan, resilient=False)
        sim.run(STEPS)

    def test_alloc_failure(self):
        with pytest.raises(ClMemAllocationFailure) as ei:
            self.run_with(FaultSpec("alloc", rate=0.2))
        assert ei.value.injected

    def test_transfer_failure(self):
        with pytest.raises(ClOutOfResources):
            self.run_with(FaultSpec("transfer_fail", rate=0.2))

    def test_transfer_corruption_detected_and_rolled_back(self):
        with pytest.raises(ClTransferCorrupted):
            self.run_with(FaultSpec("transfer_corrupt", rate=0.2))

    def test_launch_abort(self):
        with pytest.raises(ClOutOfResources) as ei:
            self.run_with(FaultSpec("launch_abort", steps=(4,)))
        assert ei.value.context["step"] == 4

    def test_device_lost(self):
        with pytest.raises(ClDeviceLost):
            self.run_with(FaultSpec("device_lost", steps=(2,)))

    def test_persistent_fault_defeats_retries_but_stays_typed(self):
        # persistent loss on the primary: retries burn out, but the host
        # fallback still completes the run correctly
        plan = FaultPlan([FaultSpec("device_lost", steps=(2,),
                                    persistent=True)], seed=1)
        sim = make_sim(faults=plan, resilient=True)
        ref = make_sim()
        sim.run(STEPS)
        ref.run(STEPS)
        assert any(o.action == "host_fallback" for o in sim.policy_log)
        np.testing.assert_array_equal(sim.curr, ref.curr)


class TestOptIn:
    """Fault injection is strictly opt-in: defaults are unchanged."""

    def test_default_gpu_has_no_fault_plan(self):
        sim = make_sim()
        assert sim._gpu.faults is None

    def test_modelled_times_unchanged_by_resilient_wrapper(self):
        plain = make_sim()
        wrapped = make_sim(resilient=True)
        plain.run(4)
        wrapped.run(4)
        assert wrapped.modelled_gpu_time_ms == plain.modelled_gpu_time_ms
        np.testing.assert_array_equal(wrapped.curr, plain.curr)
        assert wrapped.policy_log == []
