"""Prepared resident launches: step-invariant work hoisted out of the loop.

``ResidentPlan`` resolves each launch once at setup — steady kernel,
argument list, ``size_kwargs``, resource analysis, precision and (when
the gather buffer never rotates) the autotuned timing — leaving only
rotating-buffer patching and the kernel call per step.
"""

import numpy as np
import pytest

from repro.acoustics import RoomSimulation, SimConfig
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import MaterialTable, default_fi_materials
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (FaultPlan, FaultSpec, NVIDIA_TITAN_BLACK,
                       ResilientGPU, VirtualGPU)
from repro.gpu.runtime import ResidentPlan


@pytest.fixture(scope="module")
def problem():
    g = Grid3D(14, 12, 10)
    topo = build_topology(Room(g, DomeRoom()), num_materials=4)
    rng = np.random.default_rng(5)
    N = g.num_points
    guard = g.nx * g.ny
    ins = topo.inside.reshape(-1)

    def state():
        a = np.zeros(N + guard)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    table = MaterialTable.from_fi(default_fi_materials(4))
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    inputs = dict(boundaries=topo.boundary_indices,
                  materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=state(), prev2_h=state(),
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    return dict(host=host, inputs=inputs, sizes=sizes, N=N)


ROT = [("prev2_h", "prev1_h", "__out__")]


class TestHoisting:
    def _plan(self, p):
        gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
        return ResidentPlan(gpu, p["host"].plan, p["inputs"], p["sizes"],
                            ROT, "boundaryIndices", [], None)

    def test_one_prepared_launch_per_kernel(self, problem):
        state = self._plan(problem)
        assert len(state._prepared) == 2
        for prep in state._prepared:
            assert prep.size_kwargs            # sizes resolved at setup
            assert all(isinstance(v, int)
                       for v in prep.size_kwargs.values())
            assert prep.res is not None        # resources analysed once
            assert prep.precision == "double"

    def test_timing_cached_when_gather_static(self, problem):
        # the boundary-index gather buffer is not in the rotation cycle,
        # so both launches pre-resolve their autotuned timing
        state = self._plan(problem)
        assert all(prep.timing is not None for prep in state._prepared)

    def test_rotating_positions_marked(self, problem):
        state = self._plan(problem)
        rotating = {src for prep in state._prepared
                    for _pos, src in prep.rotating}
        rotating |= {prep.out_src for prep in state._prepared
                     if prep.out_rotates}
        assert len(rotating) >= 2              # prev1/prev2/out cycle

    def test_run_step_matches_execute_many(self, problem):
        p = problem
        steps = 4
        ref = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            p["host"], p["inputs"], p["sizes"], steps, ROT)
        state = self._plan(p)
        for step in range(steps):
            state.run_step(step)
            state.rotate()
        res = state.finish()
        np.testing.assert_array_equal(res.buffers["final:prev1_h"],
                                      ref.buffers["final:prev1_h"])


class TestFaultInjectedIteration:
    def test_execute_many_bit_identical_under_retries(self, problem):
        """A launch abort mid-iteration, recovered by retry, must leave
        the prepared-launch result bit-identical to a fault-free run —
        arenas and prepared state survive the retry."""
        p = problem
        steps = 6
        clean = VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
            p["host"], p["inputs"], p["sizes"], steps, ROT)
        plan = FaultPlan([FaultSpec("launch_abort", steps=(2,)),
                          FaultSpec("device_lost", steps=(4,))], seed=3)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan))
        res = gpu.execute_many(p["host"], p["inputs"], p["sizes"], steps,
                               rotations=ROT)
        assert plan.records, "no faults fired"
        assert gpu.recovered_faults() >= 1
        np.testing.assert_array_equal(res.buffers["final:prev1_h"],
                                      clean.buffers["final:prev1_h"])

    def test_virtual_gpu_sim_matches_numpy_reference(self, problem):
        """End-to-end: the virtual-GPU backend (steady kernels + prepared
        launches everywhere) still tracks the hand-written NumPy
        baseline."""
        def run(backend):
            sim = RoomSimulation(SimConfig(
                room=Room(Grid3D(14, 12, 10), DomeRoom()), scheme="fi_mm",
                backend=backend, precision="double",
                materials=default_fi_materials(4)))
            sim.add_impulse("center")
            sim.run(6)
            return sim
        ref = run("numpy")
        gpu = run("virtual_gpu")
        np.testing.assert_allclose(gpu.curr, ref.curr, atol=1e-13)
