"""Process-wide caches: NumPy-kernel sharing and the autotune memo."""

import numpy as np

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.acoustics.sim import RoomSimulation, SimConfig
from repro.bench.harness import kernel_resources
from repro.gpu import (AutotuneMemo, autotune_memo, autotune_workgroup,
                       clear_kernel_caches, kernel_cache_stats,
                       resolve_device)


def _run(devices="TitanBlack", steps=2):
    cfg = SimConfig(room=Room(Grid3D(10, 8, 8), BoxRoom()),
                    backend="virtual_gpu", devices=devices)
    sim = RoomSimulation(cfg)
    sim.add_impulse("center")
    sim.run(steps)
    return sim


def _compile_caches():
    # the arena key carries cumulative hit/miss counters, which grow with
    # every run; only the compile caches must stay fixed across reruns
    return {k: v for k, v in kernel_cache_stats().items()
            if k in ("np_kernels", "resources")}


def test_kernel_compile_shared_across_instances():
    clear_kernel_caches()
    _run()
    first = _compile_caches()
    assert first["np_kernels"] > 0 and first["resources"] > 0
    # a second simulation of the same program adds no new cache entries
    _run()
    assert _compile_caches() == first
    # and a shard pool running the same program also reuses them
    _run(devices="TitanBlack:2")
    assert _compile_caches() == first


def test_kernel_cache_results_stay_bit_identical():
    clear_kernel_caches()
    cold = _run(steps=3)
    warm = _run(steps=3)                  # compiled kernels come from cache
    assert np.array_equal(cold.curr, warm.curr)


def test_autotune_memo_hits_on_repeat_and_across_shards():
    res = kernel_resources("fi_mm", "double")
    memo = AutotuneMemo()
    d0, d1 = resolve_device("TitanBlack:2")
    t0 = autotune_workgroup(res, 4096, d0, "double", memo=memo)
    assert (memo.hits, memo.misses) == (0, 1)
    # same shape again -> hit; the other shard (same hardware model,
    # different name) -> also a hit
    t1 = autotune_workgroup(res, 4096, d0, "double", memo=memo)
    t2 = autotune_workgroup(res, 4096, d1, "double", memo=memo)
    assert t0 is t1 is t2
    assert (memo.hits, memo.misses, len(memo)) == (2, 1, 1)


def test_autotune_memo_key_separates_real_inputs():
    res = kernel_resources("fi_mm", "double")
    memo = AutotuneMemo()
    d = resolve_device("TitanBlack")[0]
    other = resolve_device("AMD7970")[0]
    gather = np.arange(64, dtype=np.int32)
    autotune_workgroup(res, 4096, d, "double", memo=memo)
    autotune_workgroup(res, 8192, d, "double", memo=memo)        # n_items
    autotune_workgroup(res, 4096, d, "single", memo=memo)        # precision
    autotune_workgroup(res, 4096, other, "double", memo=memo)    # hardware
    autotune_workgroup(res, 4096, d, "double", gather_index=gather,
                       memo=memo)                                # gather hash
    assert (memo.hits, memo.misses) == (0, 5)
    memo.clear()
    assert len(memo) == 0 and memo.misses == 0


def test_process_wide_memo_accumulates_during_simulation():
    shared = autotune_memo()
    shared.clear()
    _run(steps=4)
    # every per-step launch after the first sweep is a memo hit
    assert shared.misses > 0
    assert shared.hits > shared.misses
