"""The documented API surface (docs/api.md) matches the code's __all__.

docs/api.md's "Public surface" section is machine-checked here so the
migration guide cannot drift from what the packages actually export.
"""

import re
from pathlib import Path

import repro
from repro import api

DOC = Path(__file__).resolve().parent.parent / "docs" / "api.md"


def _documented(prefix: str) -> set[str]:
    text = DOC.read_text()
    m = re.search(rf"^`{re.escape(prefix)}` (?:re-)?exports:(.*?)\.$",
                  text, re.MULTILINE | re.DOTALL)
    assert m, f"docs/api.md lacks a '`{prefix}` exports:' line"
    return set(re.findall(r"`([^`]+)`", m.group(1)))


def test_api_surface_documented():
    assert _documented("repro.api") == set(api.__all__)


def test_root_surface_documented():
    assert _documented("repro") == set(repro.__all__)


def test_all_lists_are_exact():
    """Every __all__ name exists; every public module-level class/function
    defined in repro.api is listed."""
    for name in api.__all__:
        assert hasattr(api, name)
    public = {n for n, v in vars(api).items()
              if not n.startswith("_") and getattr(v, "__module__", None)
              == "repro.api"}
    assert public == set(api.__all__)


def test_serve_surface_documented():
    import repro.serve as serve
    assert _documented("repro.serve") == set(serve.__all__)


def test_serve_all_lists_are_exact():
    import repro.serve as serve
    for name in serve.__all__:
        assert hasattr(serve, name)


def test_obs_surface_documented():
    import repro.obs as obs
    assert _documented("repro.obs") == set(obs.__all__)


def test_obs_all_lists_are_exact():
    import repro.obs as obs
    for name in obs.__all__:
        assert hasattr(obs, name)


def test_net_surface_documented():
    import repro.net as net
    assert _documented("repro.net") == set(net.__all__)


def test_net_all_lists_are_exact():
    import repro.net as net
    for name in net.__all__:
        assert hasattr(net, name)


def test_gpu_all_covers_multi_device_surface():
    import repro.gpu as gpu
    for name in ("resolve_device", "MultiGPU", "MultiRunResult", "ShardLost",
                 "Shard", "decompose", "halo_exchange_time_ms",
                 "peer_connected", "shard_retry_policy"):
        assert name in gpu.__all__
        assert hasattr(gpu, name)
