"""The repro.api session facade: parity with the low-level API, typed
results, deprecation-shim behaviour."""

import warnings

import numpy as np
import pytest

import repro
from repro import _deprecation, api
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.sim import RoomSimulation, SimConfig


@pytest.fixture
def room():
    return Room(Grid3D(16, 14, 12), DomeRoom())


class TestSessionSimulate:
    def test_defaults_bit_identical_to_roomsimulation(self, room):
        ref = RoomSimulation(SimConfig(room=room, scheme="fi_mm",
                                       backend="virtual_gpu"))
        ref.add_impulse("center")
        ref.run(8)
        res = api.Session().simulate(room, steps=8)
        assert np.array_equal(res.field, ref.curr[:ref._N])
        assert res.time_step == 8
        assert res.kernel_time_ms == ref.modelled_gpu_time_ms
        assert res.halo_time_ms == 0.0
        assert res.devices == ("TitanBlack",)

    def test_multi_device_pool_matches_and_reports_halo(self, room):
        single = api.Session().simulate(room, steps=8)
        multi = api.Session(devices="RadeonR9:2").simulate(room, steps=8)
        assert np.array_equal(multi.field, single.field)
        assert multi.halo_time_ms > 0
        assert multi.devices == ("RadeonR9#0", "RadeonR9#1")

    def test_receivers_and_live_simulation(self, room):
        res = api.Session().simulate(room, steps=5,
                                     receivers={"mic": "center"})
        assert len(res.receivers["mic"]) == 5
        # the attached simulation can keep stepping
        res.simulation.run(3)
        assert res.simulation.time_step == 8

    def test_observability_session_collects_spans(self, room):
        s = api.Session(devices="TitanBlack:2", observability=True)
        s.simulate(room, steps=3)
        assert s.obs is not None
        names = {sp.name for sp in s.obs.tracer.spans}
        assert "sim.run" in names and "gpu.shard" in names

    def test_shard_loss_reported_in_result(self, room):
        from repro.gpu import FaultPlan, FaultSpec
        plan = FaultPlan(
            [FaultSpec(kind="device_lost", steps=(3,), max_count=1)], seed=1)
        clean = api.Session(devices="RadeonR9:2").simulate(room, steps=8)
        res = api.Session(devices="RadeonR9:2", resilient=True,
                          faults=plan).simulate(room, steps=8,
                                                checkpoint_interval=2)
        assert np.array_equal(res.field, clean.field)
        # the result names the survivors and records the re-shard
        assert res.devices == ("RadeonR9#1",)
        assert any(o.action == "reshard" for o in res.policy_log)

    def test_keyword_only(self, room):
        with pytest.raises(TypeError):
            api.Session("RadeonR9:2")
        with pytest.raises(TypeError):
            api.Session().simulate(room, 4, "fi_mm")


class TestSessionBenchAndScaling:
    def test_bench_cell(self):
        cell = api.Session(devices="AMD7970").bench(kind="fi_mm",
                                                    size="302", scale=16)
        assert cell.device == "AMD7970"
        assert cell.time_ms > 0 and cell.gelems > 0
        assert cell.workgroup > 0

    def test_scaling_sweep(self):
        cells = api.Session(devices="RadeonR9").scaling(
            mode="strong", shard_counts=(1, 2), scale=16, steps=2)
        assert [c.shards for c in cells] == [1, 2]
        assert cells[0].halo_time_ms == 0.0
        assert cells[1].halo_time_ms > 0.0
        with pytest.raises(ValueError):
            api.Session().scaling(mode="sideways")


class TestRootExports:
    def test_facade_reexported_from_repro(self):
        assert repro.Session is api.Session
        assert repro.SimulationResult is api.SimulationResult
        assert repro.BenchResult is api.BenchResult

    def test_all_names_resolve(self):
        for mod in (repro, api):
            for name in mod.__all__:
                assert getattr(mod, name) is not None


class TestDeprecationShims:
    def test_set_virtual_device_warns_exactly_once(self, room):
        _deprecation.reset()
        sim = RoomSimulation(SimConfig(room=room, backend="virtual_gpu"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sim.set_virtual_device("AMD7970")
            sim.set_virtual_device("GTX780")
        dep = [w for w in caught
               if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "set_devices" in str(dep[0].message)
        # the shim still works: the device actually changed
        assert sim._gpu.device.name == "GTX780"

    def test_shim_accepts_every_resolve_form(self, room):
        _deprecation.reset()
        sim = RoomSimulation(SimConfig(room=room, backend="virtual_gpu"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sim.set_virtual_device("RadeonR9:2")
        assert len(sim._gpu.devices) == 2
