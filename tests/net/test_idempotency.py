"""Idempotent submission across the gateway, including kill/recovery.

The fingerprint is the idempotency key at every layer; these tests pin
the two contracts that matter to callers:

* within one gateway incarnation, a duplicate ``POST /v1/jobs`` maps to
  the original job and never causes a second execution;
* across a SIGKILL, resubmitted fingerprints answer from the durable
  store with zero re-execution (``gateway_kill`` chaos scenario).
"""

import numpy as np
import pytest

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.net import Gateway, GatewayClient, Tenant
from repro.net.chaos import run_gateway_chaos
from repro.serve import SubmitRequest

TENANTS = (Tenant("alpha", "key-alpha", rate=500.0, burst=200.0,
                  max_concurrent=64, queue_share=0.9),)


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    gw = Gateway(workers=2, port=0,
                 durable_dir=str(tmp_path_factory.mktemp("idem-durable")),
                 max_queue=32, tenants=TENANTS)
    gw.start()
    yield gw
    gw.stop()


@pytest.fixture(scope="module")
def client(gateway):
    return GatewayClient(gateway.url, api_key="key-alpha")


def _req(steps, dims=(11, 9, 8)):
    return SubmitRequest(room=Room(Grid3D(*dims), BoxRoom()), steps=steps,
                         scheme="fi_mm", receivers={"mic": "center"})


def test_duplicate_post_is_idempotent(gateway, client):
    req = _req(steps=6)
    first = client.submit_ok(req)
    dup_codes = []
    for _ in range(3):
        code, payload = client.submit(req)
        dup_codes.append(code)
        assert payload["job_id"] == first["job_id"]
        assert payload["duplicate"] is True
    assert dup_codes == [200, 200, 200]
    client.wait(first["job_id"])
    # one execution no matter how many times it was posted
    assert gateway.svc.executed_fingerprints.count(req.fingerprint()) == 1


def test_duplicate_after_done_answers_without_execution(gateway, client):
    req = _req(steps=7)
    first = client.submit_ok(req)
    client.wait(first["job_id"])
    executions_before = gateway.svc.executions
    code, payload = client.submit(req)
    assert code == 200
    assert payload["duplicate"] is True
    assert payload["state"] == "DONE"
    assert gateway.svc.executions == executions_before


def test_twin_fingerprints_share_one_execution(gateway, client):
    """Distinct jobs hashing alike ride one execution via the encoded
    wire form (priority is outside the fingerprint)."""
    from repro.serve.journal import encode_request
    req = _req(steps=9)
    a = encode_request(req)
    b = dict(a, priority=5)
    first = client.submit_ok(a)
    second = client.submit_ok(b)
    assert second["job_id"] == first["job_id"]
    assert second.get("duplicate") is True
    final = client.wait(first["job_id"])
    assert final["state"] == "DONE"
    assert gateway.svc.executed_fingerprints.count(req.fingerprint()) == 1


def test_duplicate_result_is_bit_identical(gateway, client):
    req = _req(steps=8)
    sub = client.submit_ok(req)
    client.wait(sub["job_id"])
    one = client.result_arrays(sub["job_id"])
    # resubmit and fetch again: same job, same bytes
    code, payload = client.submit(req)
    assert code == 200
    two = client.result_arrays(payload["job_id"])
    assert set(one) == set(two)
    for name in one:
        assert np.array_equal(one[name], two[name])


@pytest.mark.slow
def test_gateway_kill_recovers_without_reexecution(tmp_path):
    """The E2E crash drill: SIGKILL mid-run, recover on the same durable
    dir, resubmit everything, verify bit-identity against serial."""
    report = run_gateway_chaos(jobs=4, workers=2, steps=8,
                               checkpoint_every=2,
                               durable_dir=str(tmp_path / "chaos"),
                               verify=True)
    assert report["errors"] == []
    assert report["ok"] is True
    assert report["done_before_kill"] >= 1
    assert report["verified"] == 4          # every job bit-identical
