"""End-to-end gateway tests: real sockets, real worker processes.

One module-scoped gateway (2 spawn workers, durable directory) serves
every test here — booting worker processes is the expensive part, the
requests are cheap.
"""

import numpy as np
import pytest

from repro.acoustics import BoxRoom, Grid3D, Room
from repro.api import Session
from repro.net import Gateway, GatewayClient, Tenant
from repro.serve import SubmitRequest

TENANTS = (
    Tenant("alpha", "key-alpha", rate=200.0, burst=100.0,
           max_concurrent=64, queue_share=0.9),
    Tenant("tiny", "key-tiny", rate=0.5, burst=1.0,
           max_concurrent=2, queue_share=0.5),
)


def _req(steps=6, dims=(12, 10, 8), scheme="fi_mm", **kw):
    return SubmitRequest(room=Room(Grid3D(*dims), BoxRoom()), steps=steps,
                         scheme=scheme, receivers={"mic": "center"}, **kw)


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    gw = Gateway(workers=2, port=0,
                 durable_dir=str(tmp_path_factory.mktemp("gw-durable")),
                 checkpoint_every=4, max_queue=16, tenants=TENANTS)
    gw.start()
    yield gw
    gw.stop()


@pytest.fixture(scope="module")
def client(gateway):
    return GatewayClient(gateway.url, api_key="key-alpha")


def test_submit_execute_and_bit_identity(client):
    req = _req(steps=8)
    sub = client.submit_ok(req)
    assert sub["state"] in ("QUEUED", "RUNNING")
    assert sub["fingerprint"] == req.fingerprint()
    final = client.wait(sub["job_id"])
    assert final["state"] == "DONE"
    assert final["executed_in_process"] is True

    arrays = client.result_arrays(sub["job_id"])
    serial = Session().simulate(req.room, req.steps, scheme=req.scheme,
                                receivers={"mic": "center"})
    assert np.array_equal(arrays["field"], serial.field)
    assert np.array_equal(arrays["recv:mic"], serial.receivers["mic"])

    payload = client.result_json(sub["job_id"])
    assert payload["time_step"] == req.steps
    assert payload["field"]["shape"] == list(serial.field.shape)


def test_missing_or_bad_api_key_is_401(gateway):
    anon = GatewayClient(gateway.url)
    code, payload = anon.submit(_req())
    assert code == 401
    bad = GatewayClient(gateway.url, api_key="wrong")
    code, _ = bad.submit(_req())
    assert code == 401


def test_bearer_token_accepted(gateway, client):
    req = _req(steps=7, dims=(10, 12, 8))
    code, payload = client.request_json(
        "POST", "/v1/jobs", None)
    # raw POST without body is a 400-level error, not a crash
    assert code in (400, 422)
    status, _, data = GatewayClient(gateway.url).request(
        "POST", "/v1/jobs",
        headers={"Authorization": "Bearer key-alpha"})
    assert status in (400, 422)             # authenticated, body invalid


def test_invalid_request_is_422(client):
    code, payload = client.request_json("POST", "/v1/jobs",
                                        {"not": "a request"})
    assert code == 422
    assert "error" in payload


def test_unknown_job_is_404(client):
    code, _ = client.request_json("GET", "/v1/jobs/999999")
    assert code == 404
    code, _ = client.request_json("GET", "/v1/jobs/999999/result")
    assert code == 404


def test_rate_limit_429_with_retry_after(gateway):
    tiny = GatewayClient(gateway.url, api_key="key-tiny")
    codes = {}
    for i in range(3):
        # unique fingerprints so the duplicate path cannot hide a 429
        code, payload = tiny.submit(_req(steps=3 + i, dims=(8, 8, 8),
                                         scheme="fi"))
        codes[code] = payload
    assert 429 in codes, f"burst=1 tenant never refused: {codes}"
    refusal = codes[429]
    assert refusal["reason"] == "rate"
    assert refusal["tenant"] == "tiny"


def test_result_before_done_is_409_and_cancel(gateway, client):
    # a queue of slower jobs so ours is observably non-terminal;
    # steps vary because priority does not enter the fingerprint
    reqs = [_req(steps=30 + i, dims=(16, 14, 10), scheme="fd_mm",
                 priority=i) for i in range(3)]
    subs = [client.submit_ok(r) for r in reqs]
    target = subs[-1]
    code, payload = client.request_json(
        "GET", f"/v1/jobs/{target['job_id']}/result")
    if code == 409:                         # still queued/running
        assert payload["state"] in ("QUEUED", "RUNNING")
    cancelled = 0
    for s in subs:
        code, payload = client.cancel(s["job_id"])
        if code == 200:
            cancelled += 1
            assert payload["state"] == "EVICTED"
        else:
            assert code == 409              # already started/finished
    for s in subs:                          # everything reaches terminal
        client.wait(s["job_id"])


def test_healthz_and_metrics(client, gateway):
    h = client.healthz()
    assert h["queue_capacity"] == 16
    assert h["durable"] is True
    assert h["gateway"]["workers"]["size"] == 2
    assert h["gateway"]["workers"]["alive"] == 2
    assert set(h["states"]) == {"QUEUED", "RUNNING", "DONE", "FAILED",
                                "EVICTED"}
    assert "tiny" in h["gateway"]["tenants"]
    text = client.metrics_text()
    assert "repro_gateway_requests_total" in text
    assert "repro_serve_jobs_total" in text


def test_websocket_event_stream(client):
    req = _req(steps=40, dims=(14, 12, 10), scheme="fd_mm")
    sub = client.submit_ok(req)
    events = client.events(sub["job_id"], timeout=120)
    assert events[0]["event"] == "snapshot"
    assert events[-1]["final"] is True
    assert events[-1]["state"] == "DONE"
    assert {e["event"] for e in events} <= {"snapshot", "state",
                                            "started", "progress"}


def test_websocket_snapshot_for_finished_job(client):
    req = _req(steps=5, dims=(9, 9, 9), scheme="fi")
    sub = client.submit_ok(req)
    client.wait(sub["job_id"])
    events = client.events(sub["job_id"], timeout=30)
    assert len(events) == 1
    assert events[0]["event"] == "snapshot"
    assert events[0]["state"] == "DONE"
    assert events[0]["final"] is True


def test_session_serve_http_nonblocking():
    gw = Session().serve_http(block=False, port=0, workers=1, max_queue=4)
    try:
        probe = GatewayClient(gw.url, api_key="key-alpha")
        h = probe.healthz()
        assert h["gateway"]["workers"]["size"] == 1
        assert h["queue_capacity"] == 4
    finally:
        gw.stop()


def test_index_route_lists_surface(client):
    code, payload = client.request_json("GET", "/")
    assert code == 200
    assert "POST /v1/jobs" in payload["routes"]
    code, _ = client.request_json("PUT", "/v1/jobs/1")
    assert code == 405


class TestSubscriberBackpressure:
    """The bounded per-subscriber event buffer (no sockets needed —
    pushes happen on the loop thread, the buffer itself is plain
    Python)."""

    def _sub(self, limit=4):
        from repro.net.gateway import _Subscriber
        return _Subscriber(limit)

    def test_progress_events_coalesce_newest_wins(self):
        sub = self._sub()
        sub.push({"event": "state", "state": "RUNNING"})
        for step in range(5):
            sub.push({"event": "progress", "time_step": step})
        assert len(sub.items) == 2
        assert sub.items[-1] == {"event": "progress", "time_step": 4}
        assert sub.coalesced == 4
        assert sub.dropped == 0 and not sub.resync

    def test_state_transitions_do_not_coalesce(self):
        sub = self._sub(limit=8)
        sub.push({"event": "state", "state": "QUEUED"})
        sub.push({"event": "state", "state": "RUNNING"})
        sub.push({"event": "progress", "time_step": 1})
        sub.push({"event": "state", "state": "DONE", "final": True})
        assert [p["event"] for p in sub.items] == ["state", "state",
                                                   "progress", "state"]

    def test_overflow_drops_backlog_and_flags_resync(self):
        sub = self._sub(limit=3)
        for i in range(3):
            sub.push({"event": "state", "n": i})
        sub.push({"event": "state", "n": 3})     # overflow
        assert sub.resync is True
        assert sub.dropped == 3
        # only the newest payload survived the drop
        assert [p["n"] for p in sub.items] == [3]

    def test_get_reports_resync_exactly_once(self):
        import asyncio
        sub = self._sub(limit=2)
        for i in range(4):
            sub.push({"event": "state", "n": i})

        async def drain():
            first = await sub.get()
            sub.push({"event": "state", "n": 99})
            second = await sub.get()
            return first, second

        (owed1, p1), (owed2, p2) = asyncio.run(drain())
        # pushes 0,1 filled the buffer; push 2 dropped them (resync
        # owed); push 3 queued normally behind it
        assert owed1 is True and p1["n"] == 2
        assert owed2 is False and p2["n"] == 3

    def test_broadcast_counts_drops_in_metrics(self, gateway):
        sub = self._sub(limit=2)
        job_id = 10 ** 9  # never a real job
        gateway._subscribers[job_id] = {sub}
        try:
            for i in range(6):
                gateway._broadcast_one(job_id, {"event": "state", "n": i})
        finally:
            del gateway._subscribers[job_id]
        assert sub.dropped > 0
        from repro.obs import prometheus_text
        text = prometheus_text(gateway.svc.obs.metrics)
        assert "repro_gateway_ws_dropped_total" in text
