"""Unit tests for per-tenant admission control (deterministic clocks)."""

import pytest

from repro.net.ratelimit import (AdmissionController, Tenant, TokenBucket,
                                 default_tenants)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    b = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [b.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
    wait = b.try_acquire()                  # empty: 1 token at 2/s = 0.5s
    assert wait == pytest.approx(0.5)
    clock.advance(0.5)
    assert b.try_acquire() == 0.0
    clock.advance(100.0)                    # refill caps at burst
    assert b.tokens == pytest.approx(3.0)


def test_token_bucket_refusal_does_not_consume():
    clock = FakeClock()
    b = TokenBucket(rate=1.0, burst=1.0, clock=clock)
    assert b.try_acquire() == 0.0
    before = b.tokens
    assert b.try_acquire() > 0.0
    assert b.tokens == pytest.approx(before)


@pytest.mark.parametrize("kwargs", [dict(rate=0.0, burst=1.0),
                                    dict(rate=-1.0, burst=1.0),
                                    dict(rate=1.0, burst=0.5)])
def test_token_bucket_validation(kwargs):
    with pytest.raises(ValueError):
        TokenBucket(**kwargs)


def _controller(clock, **overrides):
    spec = dict(rate=10.0, burst=2.0, max_concurrent=3, queue_share=0.5)
    spec.update(overrides)
    return AdmissionController(
        [Tenant("t", "key-t", **spec)], clock=clock)


def test_rate_refusal_carries_retry_after():
    clock = FakeClock()
    ctrl = _controller(clock)
    t = ctrl.authenticate("key-t")
    assert ctrl.admit(t, 64) == (True, "", 0.0)
    assert ctrl.admit(t, 64)[0] is True
    ok, reason, retry = ctrl.admit(t, 64)   # burst of 2 spent
    assert (ok, reason) == (False, "rate")
    assert retry == pytest.approx(0.1)
    assert ctrl.refusals["rate"] == 1


def test_concurrency_quota_checked_before_rate():
    clock = FakeClock()
    ctrl = _controller(clock, max_concurrent=1, burst=10.0)
    t = ctrl.authenticate("key-t")
    assert ctrl.admit(t, 64)[0] is True
    ctrl.on_admitted("t")
    ok, reason, _ = ctrl.admit(t, 64)
    assert (ok, reason) == (False, "concurrency")
    # the refused request burned no rate token
    assert ctrl._buckets["t"].tokens == pytest.approx(9.0)
    ctrl.on_started("t")
    ctrl.on_finished("t")
    assert ctrl.admit(t, 64)[0] is True


def test_queue_share_quota():
    clock = FakeClock()
    ctrl = _controller(clock, queue_share=0.25, burst=50.0, rate=50.0,
                       max_concurrent=50)
    t = ctrl.authenticate("key-t")
    for _ in range(2):                      # share cap = 0.25 * 8 = 2
        assert ctrl.admit(t, 8)[0] is True
        ctrl.on_admitted("t")
    ok, reason, _ = ctrl.admit(t, 8)
    assert (ok, reason) == (False, "queue-share")
    ctrl.on_started("t")                    # one job leaves the queue
    assert ctrl.admit(t, 8)[0] is True


def test_counts_and_finished_bookkeeping():
    clock = FakeClock()
    ctrl = _controller(clock, burst=10.0)
    ctrl.on_admitted("t")
    ctrl.on_admitted("t")
    ctrl.on_started("t")
    assert ctrl.counts()["t"] == {"queued": 1, "outstanding": 2}
    ctrl.on_finished("t")                   # the running one
    ctrl.on_finished("t", was_queued=True)  # a cancelled queued one
    assert ctrl.counts()["t"] == {"queued": 0, "outstanding": 0}
    ctrl.on_finished("t")                   # never goes negative
    assert ctrl.counts()["t"]["outstanding"] == 0


def test_authenticate_and_validation():
    ctrl = AdmissionController(default_tenants())
    assert ctrl.authenticate("key-alpha").name == "alpha"
    assert ctrl.authenticate("nope") is None
    assert ctrl.authenticate(None) is None
    assert ctrl.authenticate("") is None
    with pytest.raises(ValueError):
        AdmissionController([])
    with pytest.raises(ValueError):
        AdmissionController([Tenant("a", "k"), Tenant("b", "k")])
