"""Unit tests for the minimal HTTP/1.1 + WebSocket layer."""

import asyncio

import pytest

from repro.net.http import (HttpError, Response, encode_frame, read_frame,
                            read_request, websocket_accept_key)


def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


def test_parses_get_with_query_and_percent_encoding():
    req = _parse(b"GET /v1/jobs/7?format=npz&x=a%20b HTTP/1.1\r\n"
                 b"Host: h\r\nX-API-Key: k1\r\n\r\n")
    assert req.method == "GET"
    assert req.path == "/v1/jobs/7"
    assert req.query == {"format": "npz", "x": "a b"}
    assert req.headers["x-api-key"] == "k1"
    assert req.body == b""
    assert req.keep_alive


def test_parses_post_body_and_connection_close():
    req = _parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 9\r\n"
                 b"Connection: close\r\n\r\n{\"a\": 42}")
    assert req.json() == {"a": 42}
    assert not req.keep_alive


def test_eof_before_any_bytes_is_clean_close():
    assert _parse(b"") is None


@pytest.mark.parametrize("raw", [
    b"NONSENSE\r\n\r\n",
    b"GET /x\r\n\r\n",                       # no HTTP version
    b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
])
def test_malformed_requests_raise_400(raw):
    with pytest.raises(HttpError) as e:
        _parse(raw)
    assert e.value.status == 400


def test_oversized_body_raises_413():
    with pytest.raises(HttpError) as e:
        _parse(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
    assert e.value.status == 413


def test_response_encode_roundtrip():
    data = Response.json(202, {"job_id": 3}).encode()
    head, _, body = data.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 202 Accepted")
    assert b"Content-Type: application/json" in head
    assert body == b'{"job_id": 3}'
    assert f"Content-Length: {len(body)}".encode() in head


def test_websocket_accept_key_rfc6455_vector():
    # the worked example from RFC 6455 section 1.3
    assert (websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=")


@pytest.mark.parametrize("size", [0, 10, 125, 126, 200, 65535, 70000])
@pytest.mark.parametrize("mask", [False, True])
def test_frame_roundtrip_all_length_encodings(size, mask):
    payload = bytes(i % 251 for i in range(size))
    raw = encode_frame(0x2, payload, mask=mask)

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_frame(reader)
    opcode, decoded = asyncio.run(go())
    assert opcode == 0x2
    assert decoded == payload


def test_fragmented_frames_are_rejected():
    raw = bytearray(encode_frame(0x1, b"hi"))
    raw[0] &= 0x7F                          # clear FIN

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(bytes(raw))
        reader.feed_eof()
        return await read_frame(reader)
    with pytest.raises(HttpError):
        asyncio.run(go())
