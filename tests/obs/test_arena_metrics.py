"""Arena / host-wallclock metrics exposed through the obs session.

The steady-state runtime reports three new metric families alongside the
modelled-clock ones: ``repro_host_wallclock_seconds`` (real host seconds
per kernel call, histogram), ``repro_arena_bytes`` (resident arena
bytes, gauge) and ``repro_arena_slot_requests_total`` (hit/miss
counter).  ``kernel_cache_stats()`` mirrors the same accounting for
callers without a session.  The device is pinned to the
``numpy-steady`` kernel backend: arena-resident temporaries are a
property of that emitter (the compiled-loop backend holds no
full-grid temporaries, which is its whole point).
"""

import numpy as np
import pytest

from repro import obs
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import MaterialTable, default_fi_materials
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import NVIDIA_TITAN_BLACK, VirtualGPU
from repro.gpu.runtime import kernel_cache_stats
from repro.obs import prometheus_text, validate_prometheus_text


@pytest.fixture(autouse=True)
def _no_leaked_session():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def run_args():
    g = Grid3D(14, 12, 10)
    topo = build_topology(Room(g, DomeRoom()), num_materials=4)
    rng = np.random.default_rng(5)
    N, guard = g.num_points, g.nx * g.ny

    def state():
        a = np.zeros(N + guard)
        ins = topo.inside.reshape(-1)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    table = MaterialTable.from_fi(default_fi_materials(4))
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    inputs = dict(boundaries=topo.boundary_indices,
                  materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=state(), prev2_h=state(),
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    return host, inputs, sizes


class TestArenaMetrics:
    def test_families_present_and_schema_valid(self, run_args):
        host, inputs, sizes = run_args
        with obs.observe() as o:
            VirtualGPU(NVIDIA_TITAN_BLACK,
                       kernel_backend="numpy-steady").execute_many(
                host, inputs, sizes, steps=4,
                rotations=[("prev2_h", "prev1_h", "__out__")])
        text = prometheus_text(o.metrics)
        assert validate_prometheus_text(text) == []
        assert "repro_host_wallclock_seconds_bucket" in text
        assert "repro_arena_bytes" in text
        assert "repro_arena_slot_requests_total" in text

    def test_wallclock_histogram_counts_every_launch(self, run_args):
        host, inputs, sizes = run_args
        steps = 3
        with obs.observe() as o:
            VirtualGPU(NVIDIA_TITAN_BLACK,
                       kernel_backend="numpy-steady").execute_many(
                host, inputs, sizes, steps=steps,
                rotations=[("prev2_h", "prev1_h", "__out__")])
        h = o.metrics.get("repro_host_wallclock_seconds")
        total = sum(s.count for s in h.series.values())
        assert total == 2 * steps               # two kernels per step
        g = o.metrics.get("repro_arena_bytes")
        assert g.value(device=NVIDIA_TITAN_BLACK.name) > 0

    def test_slot_requests_split_hit_and_miss(self, run_args):
        host, inputs, sizes = run_args
        with obs.observe() as o:
            VirtualGPU(NVIDIA_TITAN_BLACK,
                       kernel_backend="numpy-steady").execute_many(
                host, inputs, sizes, steps=4,
                rotations=[("prev2_h", "prev1_h", "__out__")])
        c = o.metrics.get("repro_arena_slot_requests_total")
        assert c.value(outcome="miss") > 0       # warm-up allocated slots
        assert c.value(outcome="hit") > 0        # later steps reused them

    def test_no_session_no_metrics_cost(self, run_args):
        """With no session active the instrumented paths still run and
        the process-wide cache stats expose the arena accounting."""
        host, inputs, sizes = run_args
        VirtualGPU(NVIDIA_TITAN_BLACK,
                       kernel_backend="numpy-steady").execute_many(
            host, inputs, sizes, steps=2,
            rotations=[("prev2_h", "prev1_h", "__out__")])
        stats = kernel_cache_stats()
        assert {"hits", "misses", "workspaces", "nbytes"} \
            <= set(stats["arena"])
        assert stats["arena"]["misses"] > 0
