"""Metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro.obs import MetricsRegistry


@pytest.fixture()
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_labels(self, reg):
        c = reg.counter("repro_x_total", "x", ("error",))
        c.inc(error="A")
        c.inc(2.0, error="A")
        c.inc(error="B")
        assert c.value(error="A") == 3.0
        assert c.value(error="missing") == 0.0
        assert c.total() == 4.0

    def test_cannot_decrease(self, reg):
        with pytest.raises(ValueError):
            reg.counter("repro_x_total").inc(-1.0)

    def test_wrong_labels_rejected(self, reg):
        c = reg.counter("repro_x_total", "x", ("error",))
        with pytest.raises(ValueError):
            c.inc(wrong="A")
        with pytest.raises(ValueError):
            c.inc()


class TestGauge:
    def test_set_overwrites(self, reg):
        g = reg.gauge("repro_mem_bytes", "m", ("device",))
        g.set(10.0, device="d0")
        g.set(4.0, device="d0")
        assert g.value(device="d0") == 4.0


class TestHistogram:
    def test_cumulative_buckets(self, reg):
        h = reg.histogram("repro_t_ms", "t", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        s = h.series[()]
        assert s.bucket_counts == [2, 3]   # cumulative: le=1 has 2, le=10 has 3
        assert s.count == 4
        assert s.sum == pytest.approx(56.2)
        assert h.count() == 4


class TestRegistry:
    def test_get_or_create_returns_same_object(self, reg):
        a = reg.counter("repro_x_total", "x", ("k",))
        b = reg.counter("repro_x_total", "ignored", ("k",))
        assert a is b

    def test_conflicting_redeclaration_raises(self, reg):
        reg.counter("repro_x_total", "x", ("k",))
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", "x", ("other",))

    def test_iteration_sorted_by_name(self, reg):
        reg.gauge("repro_b")
        reg.counter("repro_a_total")
        assert [m.name for m in reg] == ["repro_a_total", "repro_b"]
