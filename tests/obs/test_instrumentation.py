"""End-to-end instrumentation: spans, metrics, and exports from real runs.

These tests exercise the acceptance criteria of the observability layer:
a fault-injected execution produces a Chrome trace whose spans nest
(compile → execute → launch → retry), a Prometheus export with kernel-time
histograms / transfer-byte counters / retry counters, and — with no
session active — the instrumented code paths change nothing.
"""

import numpy as np
import pytest

from repro import obs
from repro.acoustics.geometry import DomeRoom, Room
from repro.acoustics.grid import Grid3D
from repro.acoustics.lift_programs import two_kernel_host
from repro.acoustics.materials import MaterialTable, default_fi_materials
from repro.acoustics.sim import RoomSimulation, SimConfig
from repro.acoustics.topology import build_topology
from repro.lift.codegen.host import compile_host
from repro.gpu import (DeviceSpec, FaultPlan, FaultSpec, NVIDIA_TITAN_BLACK,
                       ResilientGPU, RetryPolicy, VirtualGPU,
                       transfer_time_ms)
from repro.gpu import runtime as gpu_runtime
from repro.obs import (chrome_trace, prometheus_text, validate_chrome_trace,
                       validate_prometheus_text, kernel_report)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def problem():
    g = Grid3D(14, 12, 10)
    topo = build_topology(Room(g, DomeRoom()), num_materials=4)
    rng = np.random.default_rng(5)
    N = g.num_points
    guard = g.nx * g.ny

    def state():
        a = np.zeros(N + guard)
        ins = topo.inside.reshape(-1)
        a[:N][ins] = rng.standard_normal(int(ins.sum()))
        return a

    table = MaterialTable.from_fi(default_fi_materials(4))
    host = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
    inputs = dict(boundaries=topo.boundary_indices, materialIdx=topo.material,
                  neighbors=np.concatenate([topo.nbrs,
                                            np.zeros(guard, np.int32)]),
                  betaTable=table.beta, prev1_h=state(), prev2_h=state(),
                  lambda_h=g.courant, Nx_h=g.nx, NxNy_h=g.nx * g.ny)
    sizes = dict(N=N, NP=N + guard, K=topo.num_boundary_points,
                 M=table.num_materials)
    return dict(host=host, inputs=inputs, sizes=sizes, N=N)


def make_sim(**kw):
    return RoomSimulation(SimConfig(
        room=Room(Grid3D(14, 12, 10), DomeRoom()), scheme="fi_mm",
        backend="virtual_gpu", **kw))


class TestDisabledByDefault:
    def test_no_session_active(self):
        assert obs.get() is None
        assert obs.span("x") is obs.span("y")   # the shared no-op context

    def test_results_bit_identical_with_and_without_tracing(self):
        def run():
            sim = make_sim()
            sim.add_impulse("center")
            sim.add_receiver("mic", "center")
            sim.run(4)
            return sim.receiver_signal("mic"), sim.modelled_gpu_time_ms

        base_sig, base_ms = run()
        with obs.observe():
            traced_sig, traced_ms = run()
        again_sig, again_ms = run()
        np.testing.assert_array_equal(base_sig, traced_sig)
        np.testing.assert_array_equal(base_sig, again_sig)
        assert base_ms == traced_ms == again_ms


class TestCompileSpans:
    def test_host_compilation_phases_nest(self):
        with obs.observe() as o:
            compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        host = o.tracer.find("lift.compile_host")
        assert len(host) == 1
        kernels = o.tracer.find("lift.compile_kernel")
        assert len(kernels) == 2               # volume + boundary
        assert all(k.parent_id == host[0].span_id for k in kernels)
        phases = {s.name for s in o.tracer.descendants_of(kernels[0])}
        assert phases == {"lift.rewrite", "lift.type_inference",
                          "lift.memory_alloc", "lift.emit"}
        # compile spans are wall-timed: they advanced the modelled clock
        assert host[0].duration_ms > 0.0


class TestExecuteSpans:
    def test_execute_contains_transfers_and_launches(self, problem):
        with obs.observe() as o:
            gpu = VirtualGPU(NVIDIA_TITAN_BLACK)
            res = gpu.execute(problem["host"], problem["inputs"],
                              problem["sizes"])
        ex = o.tracer.find("gpu.execute", cat="gpu")
        assert len(ex) == 1
        kids = o.tracer.descendants_of(ex[0])
        cats = {s.cat for s in kids}
        assert {"alloc", "h2d", "kernel", "d2h"} <= cats
        kernels = [s for s in kids if s.cat == "kernel"]
        assert {s.name for s in kernels} == {"volume_handling_kernel",
                                             "boundary_handling_kernel"}
        for s in kernels:
            for key in ("occupancy", "achieved_gbs", "roofline_gbs",
                        "achieved_gflops", "peak_gflops", "workgroup"):
                assert key in s.attrs, key
        # the trace agrees with the profiling events
        assert sum(s.duration_ms for s in kernels) == pytest.approx(
            res.kernel_time_ms())
        # metrics mirrored the same activity
        h = o.metrics.get("repro_gpu_kernel_time_ms")
        assert h.total_count() == 2
        transfers = o.metrics.get("repro_gpu_transfer_bytes_total")
        assert transfers.value(direction="h2d") > 0
        assert transfers.value(direction="d2h") > 0
        assert o.metrics.get("repro_gpu_mem_in_use_bytes").value(
            device="TitanBlack") > 0

    def test_h2d_durations_priced_by_the_shared_transfer_model(self, problem):
        with obs.observe() as o:
            VirtualGPU(NVIDIA_TITAN_BLACK).execute(
                problem["host"], problem["inputs"], problem["sizes"])
        for s in o.tracer.spans:
            if s.cat == "h2d":
                assert s.duration_ms == pytest.approx(transfer_time_ms(
                    s.attrs["bytes"], NVIDIA_TITAN_BLACK))

    def test_execute_many_has_per_step_spans(self, problem):
        with obs.observe() as o:
            VirtualGPU(NVIDIA_TITAN_BLACK).execute_many(
                problem["host"], problem["inputs"], problem["sizes"],
                steps=3, rotations=[("prev1_h", "prev2_h", "__out__")],
                gather_index_param="boundaries")
        many = o.tracer.find("gpu.execute_many")
        assert len(many) == 1
        steps = o.tracer.find("gpu.step", cat="step")
        assert [s.attrs["step"] for s in steps] == [0, 1, 2]
        for s in steps:
            assert s.parent_id == many[0].span_id
            assert {k.cat for k in o.tracer.children_of(s)} == {"kernel"}


class TestFaultTrace:
    """The acceptance scenario: fault-injected run, full export chain."""

    def run_faulted(self, problem):
        plan = FaultPlan([FaultSpec("launch_abort", steps=(0,))], seed=1)
        gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                           RetryPolicy(backoff_ms=0.25))
        return gpu, gpu.execute(problem["host"], problem["inputs"],
                                problem["sizes"], fault_step=0)

    def test_retry_spans_and_counters(self, problem):
        with obs.observe() as o:
            gpu, res = self.run_faulted(problem)
        attempts = o.tracer.find("resilient.attempt")
        assert [a.attrs["outcome"] for a in attempts] == [
            "failed", "failed", "ok"]
        assert attempts[0].attrs["error"] == "CL_OUT_OF_RESOURCES"
        assert attempts[0].attrs["injected"] is True
        # each attempt span contains its own gpu.execute child
        for a in attempts:
            assert "gpu.execute" in {s.name for s in o.tracer.children_of(a)}
        backoffs = o.tracer.find("retry:", cat="backoff")
        assert len(backoffs) == 2
        assert o.metrics.get("repro_gpu_retries_total").value(
            error="CL_OUT_OF_RESOURCES") == 2
        recov = o.metrics.get("repro_gpu_recovery_actions_total")
        assert recov.value(action="retry", error="CL_OUT_OF_RESOURCES") == 2
        assert recov.value(action="recovered", error="none") == 1

    def test_failed_attempts_not_double_counted(self, problem):
        with obs.observe():
            gpu, res = self.run_faulted(problem)
        clean = VirtualGPU(NVIDIA_TITAN_BLACK).execute(
            problem["host"], problem["inputs"], problem["sizes"])
        assert res.kernel_time_ms() == clean.kernel_time_ms()
        # prefix filters only see the winning attempt's launches too
        assert res.kernel_time_ms("volume") == clean.kernel_time_ms("volume")
        # ... but the discarded work is preserved and auditable
        assert res.failed_time_ms() > 0
        assert any(e.kind == "failed_kernel" and
                   e.name.startswith("attempt") for e in res.events)

    def test_report_counts_only_winning_launches(self, problem):
        with obs.observe() as o:
            self.run_faulted(problem)
        rows = kernel_report(o.tracer)
        assert all(r.launches == 1 for r in rows)   # one successful run
        # the discarded launches stay on the timeline, relabelled
        assert any(s.cat == "failed_kernel" for s in o.tracer.spans)

    def test_exports_are_schema_valid_and_nested(self, problem):
        with obs.observe() as o:
            self.run_faulted(problem)
        doc = chrome_trace(o.tracer)
        assert validate_chrome_trace(doc) == []
        text = prometheus_text(o.metrics)
        assert validate_prometheus_text(text) == []
        assert "repro_gpu_kernel_time_ms_bucket" in text
        assert "repro_gpu_transfer_bytes_total" in text
        assert "repro_gpu_retries_total" in text

    def test_fault_injected_execute_many_full_chain(self, problem):
        """The acceptance scenario end to end: compilation + a
        fault-injected execute_many under one session → a nested Chrome
        trace and a Prometheus export with all three metric families."""
        plan = FaultPlan([FaultSpec("launch_abort", steps=(1,))], seed=2)
        with obs.observe() as o:
            host = compile_host(two_kernel_host("fi_mm", "double").program,
                                "ac")
            gpu = ResilientGPU(VirtualGPU(NVIDIA_TITAN_BLACK, faults=plan),
                               RetryPolicy(backoff_ms=0.1))
            res = gpu.execute_many(
                host, problem["inputs"], problem["sizes"], steps=3,
                rotations=[("prev1_h", "prev2_h", "__out__")],
                gather_index_param="boundaries")
        # every layer appears: compile → execute_many → step → launch → retry
        names = {s.name for s in o.tracer.spans}
        assert {"lift.compile_host", "lift.compile_kernel",
                "resilient.attempt", "gpu.execute_many", "gpu.step",
                "volume_handling_kernel"} <= names
        assert any(n.startswith("retry:") for n in names)
        # the failed attempt's partial step timeline was preserved
        assert res.failed_time_ms() > 0
        doc = chrome_trace(o.tracer)
        assert validate_chrome_trace(doc) == []
        text = prometheus_text(o.metrics)
        assert validate_prometheus_text(text) == []
        assert "repro_gpu_kernel_time_ms_bucket" in text
        assert "repro_gpu_transfer_bytes_total" in text
        assert o.metrics.get("repro_gpu_retries_total").total() >= 1


class TestSimulationSpans:
    def test_step_spans_nest_down_to_launches(self):
        with obs.observe() as o:
            sim = make_sim()
            sim.add_impulse("center")
            sim.run(2)
        runs = o.tracer.find("sim.run")
        steps = o.tracer.find("sim.step")
        assert len(runs) == 1 and len(steps) == 2
        for s in steps:
            assert s.parent_id == runs[0].span_id
            names = {d.name for d in o.tracer.descendants_of(s)}
            assert "gpu.execute" in names
            assert "volume_handling_kernel" in names
        assert o.metrics.get("repro_sim_steps_total").value(
            scheme="fi_mm", backend="virtual_gpu") == 2

    def test_seeded_fault_reaches_policy_log_and_metrics(self):
        plan = FaultPlan([FaultSpec("launch_abort", steps=(1,))], seed=3)
        with obs.observe() as o:
            sim = make_sim(faults=plan, resilient=True)
            sim.add_impulse("center")
            sim.run(3)
        actions = [p.action for p in sim.policy_log]
        assert "retry" in actions and "recovered" in actions
        assert o.metrics.get("repro_gpu_retries_total").total() >= 1
        # the retry spans sit under the step in which the fault fired
        step1 = [s for s in o.tracer.find("sim.step")
                 if s.attrs["step"] == 1][0]
        descendants = {d.name for d in o.tracer.descendants_of(step1)}
        assert "resilient.attempt" in descendants
        assert any(n.startswith("retry:") for n in descendants)

    def test_health_monitor_metrics(self):
        with obs.observe() as o:
            sim = make_sim(health_interval=1)
            sim.add_impulse("center")
            sim.run(3)
        assert o.metrics.get("repro_sim_health_checks_total").total() == 3
        assert o.metrics.get("repro_sim_field_energy").value(
            scheme="fi_mm") > 0


class TestReport:
    def test_rows_aggregate_launches(self, problem):
        with obs.observe() as o:
            VirtualGPU(NVIDIA_TITAN_BLACK).execute(
                problem["host"], problem["inputs"], problem["sizes"])
        rows = kernel_report(o.tracer)
        assert {r.kernel for r in rows} == {"volume_handling_kernel",
                                            "boundary_handling_kernel"}
        for r in rows:
            assert r.device == "TitanBlack" and r.launches == 1
            assert 0 < r.achieved_gbs and 0 < r.roofline_gbs
            assert 0 <= r.pct_roofline <= 100
        assert "TitanBlack" in o.report()


class TestBenchTelemetry:
    def test_modelled_time_emits_cell_telemetry(self):
        from repro.bench.harness import modelled_time
        from repro.bench.rooms import room_bundle
        bundle = room_bundle("302", "dome", scale=4)
        with obs.observe() as o:
            t1 = modelled_time("fi_mm", "double", "LIFT", "TitanBlack", bundle)
        t2 = modelled_time("fi_mm", "double", "LIFT", "TitanBlack", bundle)
        assert t1.time_ms == t2.time_ms      # telemetry never perturbs
        cells = o.tracer.find("bench:", cat="bench")
        assert len(cells) == 1 and cells[0].attrs["impl"] == "LIFT"
        assert o.metrics.get("repro_bench_cells_total").value(
            kind="fi_mm", impl="LIFT") == 1
        assert o.metrics.get("repro_bench_cell_time_ms").count(
            device="TitanBlack", precision="double") == 1

    def test_sweep_records_failures(self):
        from repro.bench.harness import fault_tolerant_sweep
        from repro.gpu.errors import ClDeviceNotAvailable

        def compute(key):
            if key == "bad":
                raise ClDeviceNotAvailable("gone")
            return key

        with obs.observe() as o:
            cells = fault_tolerant_sweep(["a", "bad", "b"], compute,
                                         max_attempts=2)
        assert [c.ok for c in cells] == [True, False, True]
        assert len(o.tracer.find("bench.sweep")) == 1
        assert o.metrics.get("repro_bench_cell_failures_total").total() == 1
        g = o.metrics.get("repro_bench_sweep_cells")
        assert g.value(status="ok") == 2 and g.value(status="failed") == 1


class TestProfilingEventTimestamps:
    def test_events_carry_modelled_timestamps(self, problem):
        res = VirtualGPU(NVIDIA_TITAN_BLACK).execute(
            problem["host"], problem["inputs"], problem["sizes"])
        starts = [e.start_ms for e in res.events]
        assert starts == sorted(starts)
        for e in res.events:
            assert e.end_ms == pytest.approx(e.start_ms + e.duration_ms)
            assert e.ms == e.duration_ms      # back-compat alias

    def test_pcie_bandwidth_single_source_of_truth(self):
        assert gpu_runtime._PCIE_BANDWIDTH == pytest.approx(
            DeviceSpec.pcie_bandwidth_gbs * 1e9)
        assert NVIDIA_TITAN_BLACK.pcie_bandwidth == pytest.approx(
            NVIDIA_TITAN_BLACK.pcie_bandwidth_gbs * 1e9)
        assert transfer_time_ms(12e9, NVIDIA_TITAN_BLACK) == pytest.approx(
            1e3 * 12e9 / NVIDIA_TITAN_BLACK.pcie_bandwidth)


class TestCli:
    def test_cli_smoke_with_fault_and_validation(self, tmp_path, capsys):
        from repro.obs.__main__ import main
        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        rc = main(["--steps", "3", "--fault", "launch_abort:1", "--validate",
                   "--trace", str(trace), "--metrics", str(prom)])
        assert rc == 0
        assert trace.exists() and prom.exists()
        out = capsys.readouterr().out
        assert "volume_handling_kernel" in out
        assert "repro_gpu_retries_total" in prom.read_text()
        assert obs.get() is None              # CLI cleans up its session
