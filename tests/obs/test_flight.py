"""The always-on bounded flight recorder."""

import json

import pytest

from repro.obs import FlightRecorder


class TestRing:
    def test_record_and_events(self):
        fr = FlightRecorder(capacity=4)
        fr.record("submit", 1.0, job=1)
        fr.record("complete", 2.0, job=1, latency_ms=1.0)
        assert len(fr) == 2 and fr.recorded == 2 and fr.dropped == 0
        assert fr.events()[0] == {"t_ms": 1.0, "kind": "submit", "job": 1}
        assert [e["kind"] for e in fr.events("complete")] == ["complete"]

    def test_ring_bounds_memory(self):
        fr = FlightRecorder(capacity=3)
        for i in range(10):
            fr.record("tick", float(i), n=i)
        assert len(fr) == 3
        assert fr.recorded == 10 and fr.dropped == 7
        assert [e["n"] for e in fr.events()] == [7, 8, 9]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear(self):
        fr = FlightRecorder()
        fr.record("x")
        fr.clear()
        assert len(fr) == 0


class TestDump:
    def test_snapshot_shape(self):
        fr = FlightRecorder(capacity=2)
        fr.record("a", 1.0)
        snap = fr.snapshot(reason="why")
        assert snap["reason"] == "why"
        assert snap["capacity"] == 2
        assert snap["recorded"] == 1 and snap["dropped"] == 0
        assert snap["events"] == [{"t_ms": 1.0, "kind": "a"}]

    def test_dump_round_trips_as_json(self, tmp_path):
        fr = FlightRecorder()
        fr.record("crash", 3.0, detail="boom")
        path = tmp_path / "flight.json"
        doc = fr.dump(path, reason="crash")
        assert fr.dumps == 1
        assert json.loads(path.read_text()) == doc
        assert doc["events"][0]["detail"] == "boom"
