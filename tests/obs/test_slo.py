"""Declarative SLOs and multi-window burn-rate alerting."""

import pytest

from repro.obs import (Observability, SLO, SLOTracker, TimeSeriesStore,
                       default_slos)


def make_tracker(slos=None, *, width_ms=10.0, burn_factor=2.0):
    store = TimeSeriesStore(width_ms=width_ms)
    slos = slos if slos is not None else (
        SLO("lat", series="latency_ms", threshold=100.0, budget=0.1),)
    return SLOTracker(slos, store, burn_factor=burn_factor), store


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", series="s", kind="bogus")
        with pytest.raises(ValueError):
            SLO("x", series="s", budget=0.0)
        with pytest.raises(ValueError):
            SLO("x", series="bad", kind="ratio")     # no total_series

    def test_describe(self):
        q = SLO("lat", series="latency_ms", threshold=25.0, budget=0.05)
        assert "p95(latency_ms) <= 25 ms" in q.describe()
        r = SLO("err", series="failed", kind="ratio", budget=0.01,
                total_series=("completed", "failed"))
        assert "failed/completed+failed" in r.describe()

    def test_default_slos_names(self):
        assert [s.name for s in default_slos()] == [
            "latency_p95", "queue_wait_p95", "error_rate"]

    def test_duplicate_names_rejected(self):
        store = TimeSeriesStore()
        twins = (SLO("a", series="x"), SLO("a", series="y"))
        with pytest.raises(ValueError):
            SLOTracker(twins, store)


class TestQuantileSLO:
    def test_compliant_when_under_threshold(self):
        tracker, store = make_tracker()
        for v in (10.0, 20.0, 30.0):
            store.observe("latency_ms", 5.0, v)
        (status,) = tracker.evaluate(5.0)
        assert status.compliant and not status.alerting
        assert status.value == 30.0
        assert status.burn_short == 0.0

    def test_burn_alert_fires_on_both_windows(self):
        tracker, store = make_tracker()
        # all observations bad -> bad fraction 1.0, burn 10x over both
        for v in (200.0, 300.0, 400.0):
            store.observe("latency_ms", 5.0, v)
        (status,) = tracker.evaluate(5.0)
        assert not status.compliant
        assert status.alerting
        assert status.burn_short == pytest.approx(10.0)
        assert tracker.alerting() == ("lat",)

    def test_short_window_blip_does_not_alert(self):
        """One bad recent window over a mostly-good long window: the
        long-window burn stays under the factor, so no alert."""
        tracker, store = make_tracker()
        # 3 old windows of good observations
        for w in range(3):
            for _ in range(10):
                store.observe("latency_ms", w * 10.0 + 5.0, 10.0)
        # newest window: one bad observation
        store.observe("latency_ms", 35.0, 500.0)
        (status,) = tracker.evaluate(35.0)
        assert status.burn_short >= 2.0       # short window is all-bad
        assert status.burn_long < 2.0         # diluted by history
        assert not status.alerting

    def test_no_samples_never_alerts(self):
        tracker, _ = make_tracker()
        (status,) = tracker.evaluate(0.0)
        assert not status.alerting and status.samples == 0


class TestRatioSLO:
    def test_error_rate(self):
        slo = SLO("err", series="failed", kind="ratio", budget=0.25,
                  total_series=("completed", "failed"))
        tracker, store = make_tracker((slo,))
        for _ in range(3):
            store.observe("completed", 5.0)
        store.observe("failed", 5.0)
        (status,) = tracker.evaluate(5.0)
        assert status.value == pytest.approx(0.25)
        assert status.compliant                  # exactly at budget
        assert status.burn_short == pytest.approx(1.0)
        assert not status.alerting


class TestTransitions:
    def test_transition_recorded_once_and_recovery(self):
        tracker, store = make_tracker()
        store.observe("latency_ms", 5.0, 500.0)
        tracker.evaluate(5.0)
        tracker.evaluate(5.0)                    # still alerting: no dup
        assert [t["event"] for t in tracker.transitions] == ["slo.burn"]
        # good traffic pushes the bad window out of both horizons
        for w in range(1, 6):
            for _ in range(10):
                store.observe("latency_ms", w * 10.0 + 5.0, 10.0)
        tracker.evaluate(55.0)
        assert [t["event"] for t in tracker.transitions] == [
            "slo.burn", "slo.recovered"]
        assert tracker.alerting() == ()

    def test_transition_writes_span_and_counter(self):
        tracker, store = make_tracker()
        obs = Observability()
        store.observe("latency_ms", 5.0, 500.0)
        tracker.evaluate(5.0, obs=obs)
        spans = [s for s in obs.tracer.spans if s.cat == "slo"]
        assert [s.name for s in spans] == ["slo.burn"]
        assert spans[0].attrs["slo"] == "lat"
        text = "\n".join(
            f"{m.name}" for m in obs.metrics)
        assert "repro_slo_burn_alerts_total" in text

    def test_evaluation_is_pure_without_obs(self):
        """Same windows, same verdicts, whether or not a sink is given
        (the byte-identity discipline)."""
        t1, s1 = make_tracker()
        t2, s2 = make_tracker()
        for s in (s1, s2):
            s.observe("latency_ms", 5.0, 500.0)
        a = [st.as_dict() for st in t1.evaluate(5.0)]
        b = [st.as_dict() for st in t2.evaluate(5.0, obs=Observability())]
        assert a == b
