"""The deterministic service dashboard (snapshot, renderer, validator)."""

import json

from repro.obs import (render_dashboard, service_snapshot,
                       validate_dashboard)
from repro.obs.dashboard import main as dashboard_main
from repro.serve import SimulationService
from repro.serve.__main__ import build_jobs


def run_service(jobs=5, steps=3, **kw):
    svc = SimulationService(devices="TitanBlack:2", observability=True, **kw)
    for req in build_jobs(jobs, steps):
        svc.submit(req)
    svc.drain()
    return svc


class TestSnapshot:
    def test_shape_and_validity(self):
        svc = run_service()
        snap = service_snapshot(svc, top=3)
        assert validate_dashboard(snap) == []
        assert snap["version"] == 1
        assert len(snap["slowest"]) <= 3
        assert all(r["trace_id"].startswith("t-") for r in snap["slowest"])
        assert len(snap["devices"]) == 2
        for d in snap["devices"]:
            assert 0.0 <= d["utilisation"] <= 1.0
        assert snap["slo"] is not None
        assert snap["timeseries"]["series"]
        assert snap["flight"]["recorded"] > 0

    def test_slowest_sorted_by_latency(self):
        snap = service_snapshot(run_service())
        lats = [r["latency_ms"] for r in snap["slowest"]]
        assert lats == sorted(lats, reverse=True)

    def test_obs_off_panels_null_but_snapshot_valid(self):
        svc = SimulationService(devices="TitanBlack")
        for req in build_jobs(3, 2):
            svc.submit(req)
        svc.drain()
        snap = service_snapshot(svc)
        assert snap["timeseries"] is None and snap["slo"] is None
        assert snap["flight"]["recorded"] > 0     # flight is always on
        assert validate_dashboard(snap) == []

    def test_json_serialisable(self):
        snap = service_snapshot(run_service())
        assert json.loads(json.dumps(snap)) == snap


class TestDeterminism:
    def test_two_fresh_services_identical_snapshot(self):
        a = service_snapshot(run_service())
        b = service_snapshot(run_service())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_render_is_byte_stable(self):
        a = render_dashboard(service_snapshot(run_service()))
        b = render_dashboard(service_snapshot(run_service()))
        assert a == b


class TestRender:
    def test_panels_present(self):
        text = render_dashboard(service_snapshot(run_service()))
        for needle in ("repro serve dashboard", "devices:", "slo:",
                       "slowest traces:", "flight recorder:"):
            assert needle in text
        assert "latency_p95" in text

    def test_obs_off_render(self):
        svc = SimulationService(devices="TitanBlack")
        for req in build_jobs(2, 2):
            svc.submit(req)
        svc.drain()
        assert "(observability off)" in render_dashboard(
            service_snapshot(svc))


class TestValidator:
    def test_catches_missing_keys(self):
        snap = service_snapshot(run_service())
        del snap["devices"]
        assert any("devices" in p for p in validate_dashboard(snap))

    def test_catches_bad_version_and_utilisation(self):
        snap = service_snapshot(run_service())
        snap["version"] = 99
        snap["devices"][0]["utilisation"] = 7.0
        problems = validate_dashboard(snap)
        assert any("version" in p for p in problems)
        assert any("utilisation" in p for p in problems)

    def test_non_dict(self):
        assert validate_dashboard([]) != []


class TestCLI:
    def test_cli_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "dash.json"
        rc = dashboard_main(["--jobs", "4", "--steps", "2",
                             "--json", str(out), "--validate"])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_dashboard(doc) == []
        assert "repro serve dashboard" in capsys.readouterr().out

    def test_cli_renders_from_file(self, tmp_path, capsys):
        out = tmp_path / "dash.json"
        assert dashboard_main(["--jobs", "3", "--steps", "2",
                               "--json", str(out)]) == 0
        capsys.readouterr()
        rc = dashboard_main(["--from", str(out), "--validate"])
        assert rc == 0
        assert "slowest traces:" in capsys.readouterr().out
