"""Exporters: Chrome trace-event JSON and Prometheus text, + validators."""

import json

import pytest

from repro.obs import (MetricsRegistry, Tracer, chrome_trace, prometheus_text,
                       validate_chrome_trace, validate_prometheus_text,
                       write_chrome_trace, write_prometheus)


@pytest.fixture()
def traced():
    t = Tracer()
    with t.span("outer", "gpu", device="TitanBlack"):
        t.event("kern", "kernel", 2.0, occupancy=0.8)
        t.event("d2h", "d2h", 0.5, bytes=1024)
    return t


class TestChromeTrace:
    def test_shape_and_units(self, traced):
        doc = chrome_trace(traced)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["outer", "kern", "d2h"]
        kern = xs[1]
        assert kern["ts"] == 0.0 and kern["dur"] == 2000.0  # microseconds
        assert kern["args"]["occupancy"] == 0.8
        assert "parent_id" in kern["args"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}

    def test_validator_accepts_own_output(self, traced):
        assert validate_chrome_trace(chrome_trace(traced)) == []

    def test_validator_catches_bad_nesting(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 5, "dur": 10},
        ]}
        assert any("nest" in p for p in validate_chrome_trace(doc))

    def test_validator_catches_missing_fields(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 1,
                              "ts": "oops", "dur": 1}]}) != []

    def test_write_round_trips(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced, path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("repro_gpu_retries_total", "retries", ("error",)).inc(
        error="CL_DEVICE_LOST")
    reg.gauge("repro_gpu_mem_in_use_bytes", "mem", ("device",)).set(
        2048, device="TitanBlack")
    h = reg.histogram("repro_gpu_kernel_time_ms", "t", ("kernel",),
                      buckets=(0.1, 1.0, 10.0))
    h.observe(0.05, kernel="volume")
    h.observe(5.0, kernel="volume")
    return reg


class TestPrometheus:
    def test_exposition_format(self, registry):
        text = prometheus_text(registry)
        assert "# TYPE repro_gpu_retries_total counter" in text
        assert 'repro_gpu_retries_total{error="CL_DEVICE_LOST"} 1' in text
        assert 'repro_gpu_mem_in_use_bytes{device="TitanBlack"} 2048' in text
        assert ('repro_gpu_kernel_time_ms_bucket{kernel="volume",le="+Inf"} 2'
                in text)
        assert 'repro_gpu_kernel_time_ms_count{kernel="volume"} 2' in text

    def test_validator_accepts_own_output(self, registry):
        assert validate_prometheus_text(prometheus_text(registry)) == []

    def test_validator_catches_problems(self):
        assert any("malformed sample" in p for p in validate_prometheus_text(
            "this is not a metric line\n"))
        bad_hist = ("# HELP h h\n# TYPE h histogram\n"
                    'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                    "h_sum 1\nh_count 3\n")
        assert any("cumulative" in p
                   for p in validate_prometheus_text(bad_hist))
        no_inf = ("# HELP h h\n# TYPE h histogram\n"
                  'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n')
        assert any("+Inf" in p for p in validate_prometheus_text(no_inf))

    def test_write_round_trips(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, path)
        assert validate_prometheus_text(path.read_text()) == []

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "x", ("detail",)).inc(
            detail='quote " back \\ newline \n end')
        text = prometheus_text(reg)
        assert validate_prometheus_text(text) == []
        assert r'\"' in text and r'\\' in text and r'\n' in text
