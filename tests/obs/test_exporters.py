"""Exporters: Chrome trace-event JSON and Prometheus text, + validators."""

import json

import pytest

from repro.obs import (MetricsRegistry, Tracer, chrome_trace, prometheus_text,
                       stitch_chrome_trace, stitch_spans,
                       validate_chrome_trace, validate_prometheus_text,
                       write_chrome_trace, write_prometheus,
                       write_stitched_trace)


@pytest.fixture()
def traced():
    t = Tracer()
    with t.span("outer", "gpu", device="TitanBlack"):
        t.event("kern", "kernel", 2.0, occupancy=0.8)
        t.event("d2h", "d2h", 0.5, bytes=1024)
    return t


class TestChromeTrace:
    def test_shape_and_units(self, traced):
        doc = chrome_trace(traced)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["outer", "kern", "d2h"]
        kern = xs[1]
        assert kern["ts"] == 0.0 and kern["dur"] == 2000.0  # microseconds
        assert kern["args"]["occupancy"] == 0.8
        assert "parent_id" in kern["args"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}

    def test_validator_accepts_own_output(self, traced):
        assert validate_chrome_trace(chrome_trace(traced)) == []

    def test_validator_catches_bad_nesting(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
            {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 5, "dur": 10},
        ]}
        assert any("nest" in p for p in validate_chrome_trace(doc))

    def test_validator_catches_missing_fields(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 1,
                              "ts": "oops", "dur": 1}]}) != []

    def test_write_round_trips(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced, path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("repro_gpu_retries_total", "retries", ("error",)).inc(
        error="CL_DEVICE_LOST")
    reg.gauge("repro_gpu_mem_in_use_bytes", "mem", ("device",)).set(
        2048, device="TitanBlack")
    h = reg.histogram("repro_gpu_kernel_time_ms", "t", ("kernel",),
                      buckets=(0.1, 1.0, 10.0))
    h.observe(0.05, kernel="volume")
    h.observe(5.0, kernel="volume")
    return reg


class TestPrometheus:
    def test_exposition_format(self, registry):
        text = prometheus_text(registry)
        assert "# TYPE repro_gpu_retries_total counter" in text
        assert 'repro_gpu_retries_total{error="CL_DEVICE_LOST"} 1' in text
        assert 'repro_gpu_mem_in_use_bytes{device="TitanBlack"} 2048' in text
        assert ('repro_gpu_kernel_time_ms_bucket{kernel="volume",le="+Inf"} 2'
                in text)
        assert 'repro_gpu_kernel_time_ms_count{kernel="volume"} 2' in text

    def test_validator_accepts_own_output(self, registry):
        assert validate_prometheus_text(prometheus_text(registry)) == []

    def test_validator_catches_problems(self):
        assert any("malformed sample" in p for p in validate_prometheus_text(
            "this is not a metric line\n"))
        bad_hist = ("# HELP h h\n# TYPE h histogram\n"
                    'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                    "h_sum 1\nh_count 3\n")
        assert any("cumulative" in p
                   for p in validate_prometheus_text(bad_hist))
        no_inf = ("# HELP h h\n# TYPE h histogram\n"
                  'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n')
        assert any("+Inf" in p for p in validate_prometheus_text(no_inf))

    def test_write_round_trips(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, path)
        assert validate_prometheus_text(path.read_text()) == []

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "x", ("detail",)).inc(
            detail='quote " back \\ newline \n end')
        text = prometheus_text(reg)
        assert validate_prometheus_text(text) == []
        assert r'\"' in text and r'\\' in text and r'\n' in text


class TestPrometheusEdgeCases:
    def test_unescaped_quote_in_label_value_caught(self):
        bad = ('# HELP m m\n# TYPE m counter\n'
               'm{l="raw " quote"} 1\n')
        assert any("label" in p.lower()
                   for p in validate_prometheus_text(bad))

    def test_unescaped_trailing_backslash_caught(self):
        # a lone backslash before the closing quote escapes the quote
        # itself, leaving the block unterminated
        bad = ('# HELP m m\n# TYPE m counter\n'
               'm{l="oops\\"} 1\n')
        assert validate_prometheus_text(bad) != []

    def test_escaped_values_pass(self):
        good = ('# HELP m m\n# TYPE m counter\n'
                'm{l="q \\" b \\\\ n \\n done"} 1\n')
        assert validate_prometheus_text(good) == []

    def test_bad_label_name_caught(self):
        bad = ('# HELP m m\n# TYPE m counter\n'
               'm{9bad="v"} 1\n')
        assert any("label" in p.lower()
                   for p in validate_prometheus_text(bad))

    def test_inf_bucket_vs_count_mismatch_caught(self):
        bad = ("# HELP h h\n# TYPE h histogram\n"
               'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 2\n'
               "h_sum 1\nh_count 5\n")
        assert any("_count" in p for p in validate_prometheus_text(bad))

    def test_labelled_histogram_inf_consistency(self, registry):
        # corrupt the real exposition: bump the +Inf bucket only
        text = prometheus_text(registry)
        broken = text.replace(
            'repro_gpu_kernel_time_ms_bucket{kernel="volume",le="+Inf"} 2',
            'repro_gpu_kernel_time_ms_bucket{kernel="volume",le="+Inf"} 9')
        assert validate_prometheus_text(text) == []
        assert validate_prometheus_text(broken) != []


@pytest.fixture()
def lane_tracer():
    """A serving-shaped trace: gpu work on the main timeline plus two
    per-job lifecycle lanes recorded retroactively."""
    t = Tracer()
    with t.span("serve.execute", "serve", trace_id="t-aaa", job_id=1):
        t.event("kern", "kernel", 2.0)
    j1 = t.interval("job", "job", 0.0, 2.0, trace_id="t-aaa", job_id=1)
    t.interval("job.run", "job", 0.0, 2.0, parent=j1, trace_id="t-aaa")
    j2 = t.interval("job", "job", 0.5, 3.0, trace_id="t-bbb", job_id=2)
    t.interval("job.wait", "job", 0.5, 1.0, parent=j2, trace_id="t-bbb")
    return t


class TestJobLanes:
    def test_lane_per_trace_id(self, lane_tracer):
        doc = chrome_trace(lane_tracer)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        tid = {e["name"]: e["tid"] for e in xs if e["cat"] != "job"}
        assert tid["serve.execute"] == 1 and tid["kern"] == 1
        lanes = {}
        for e in xs:
            if e["cat"] == "job":
                lanes.setdefault(e["args"]["trace_id"], set()).add(e["tid"])
        assert lanes == {"t-aaa": {2}, "t-bbb": {3}}
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert "job t-aaa" in names and "job t-bbb" in names

    def test_lanes_validate(self, lane_tracer):
        assert validate_chrome_trace(chrome_trace(lane_tracer)) == []

    def test_parent_links_exported_and_checked(self, lane_tracer):
        doc = chrome_trace(lane_tracer)
        runs = [e for e in doc["traceEvents"]
                if e.get("name") == "job.run"]
        assert runs and "parent_id" in runs[0]["args"]
        # corrupt a parent link: the validator must notice
        runs[0]["args"]["parent_id"] = 99999
        assert any("parent_id" in p for p in validate_chrome_trace(doc))


class TestStitching:
    def make_incarnation(self, trace_id, start):
        t = Tracer()
        t.clock.advance(start)
        with t.span("serve.execute", "serve", trace_id=trace_id):
            t.event("kern", "kernel", 1.0)
        t.interval("job", "job", start, start + 1.0, trace_id=trace_id)
        return t

    def test_spans_offset_and_labelled(self):
        a = self.make_incarnation("t-x", 0.0)
        b = self.make_incarnation("t-x", 0.0)
        merged = stitch_spans([a, b], labels=["inc0", "inc1"], gap_ms=1.0)
        incs = {s.attrs["incarnation"] for s in merged.spans}
        assert incs == {"inc0", "inc1"}
        first = [s for s in merged.spans if s.attrs["incarnation"] == "inc0"]
        second = [s for s in merged.spans if s.attrs["incarnation"] == "inc1"]
        assert min(s.start_ms for s in second) > max(s.end_ms for s in first)
        ids = [s.span_id for s in merged.spans]
        assert len(ids) == len(set(ids))        # ids stay unique

    def test_parent_links_remapped(self):
        a = self.make_incarnation("t-x", 0.0)
        b = self.make_incarnation("t-x", 0.0)
        merged = stitch_spans([a, b])
        by_id = {s.span_id: s for s in merged.spans}
        for s in merged.spans:
            if s.parent_id is not None:
                parent = by_id[s.parent_id]
                assert parent.attrs["incarnation"] == s.attrs["incarnation"]

    def test_one_lane_across_incarnations_and_valid(self):
        a = self.make_incarnation("t-x", 0.0)
        b = self.make_incarnation("t-x", 0.0)
        doc = stitch_chrome_trace([a, b])
        assert validate_chrome_trace(doc) == []
        lanes = {e["tid"] for e in doc["traceEvents"]
                 if e.get("ph") == "X" and e.get("cat") == "job"}
        assert len(lanes) == 1                 # one job lane, two incarnations
        incs = {e["args"]["incarnation"] for e in doc["traceEvents"]
                if e.get("ph") == "X" and e.get("cat") == "job"}
        assert incs == {0, 1}

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stitch_spans([Tracer()], labels=[0, 1])

    def test_write_stitched_trace(self, tmp_path):
        a = self.make_incarnation("t-x", 0.0)
        path = tmp_path / "stitched.json"
        write_stitched_trace([a], path)
        assert validate_chrome_trace(json.loads(path.read_text())) == []
