"""Tracer: modelled clock, span nesting, context propagation."""

import pytest

from repro.obs import ModelClock, Tracer


class TestModelClock:
    def test_advances_and_clamps_negative(self):
        c = ModelClock()
        assert c.now_ms == 0.0
        c.advance(1.5)
        c.advance(-3.0)
        assert c.now_ms == 1.5

    def test_custom_start(self):
        assert ModelClock(7.0).now_ms == 7.0


class TestSpans:
    def test_event_advances_clock_and_finishes(self):
        t = Tracer()
        s = t.event("k", "kernel", 2.5, device="X")
        assert (s.start_ms, s.end_ms) == (0.0, 2.5)
        assert t.clock.now_ms == 2.5
        assert s.finished and s.duration_ms == 2.5
        assert s.attrs["device"] == "X"

    def test_nesting_via_stack(self):
        t = Tracer()
        with t.span("outer", "gpu") as outer:
            inner = t.event("inner", "kernel", 1.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # the outer span covers the clock time its children spent
        assert outer.start_ms == 0.0 and outer.end_ms == 1.0
        assert t.children_of(outer) == [inner]

    def test_manual_start_end(self):
        t = Tracer()
        s = t.start("step", "step", step=3)
        t.event("k", "kernel", 1.0)
        t.end(s)
        assert s.finished and s.duration_ms == 1.0
        assert t.current() is None

    def test_exception_closes_dangling_children(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("outer", "gpu"):
                t.start("child", "step")   # never explicitly ended
                raise RuntimeError("boom")
        assert all(s.finished for s in t.spans)
        assert t.current() is None
        # a fresh root span is again parentless: the stack is clean
        assert t.event("next", "kernel", 0.0).parent_id is None

    def test_wall_span_advances_clock(self):
        t = Tracer()
        with t.span("compile", "compile", wall=True):
            pass
        assert t.clock.now_ms > 0.0

    def test_descendants_and_find(self):
        t = Tracer()
        with t.span("a", "gpu") as a:
            with t.span("b", "step") as b:
                c = t.event("kern:x", "kernel", 1.0)
        assert set(s.span_id for s in t.descendants_of(a)) == {
            b.span_id, c.span_id}
        assert t.find("kern", cat="kernel") == [c]
        assert t.finished() == t.spans


class TestInterval:
    def test_retroactive_span_does_not_advance_clock(self):
        t = Tracer()
        t.clock.advance(10.0)
        s = t.interval("job", "job", 2.0, 8.0, trace_id="t-x")
        assert t.clock.now_ms == 10.0
        assert s.finished and s.start_ms == 2.0 and s.end_ms == 8.0
        assert s.attrs["trace_id"] == "t-x"

    def test_interval_ignores_context_stack(self):
        t = Tracer()
        with t.span("outer", "gpu") as outer:
            s = t.interval("job", "job", 0.0, 1.0)
            assert s.parent_id is None          # not adopted by the stack
            assert t.current() is outer         # stack untouched

    def test_explicit_parent_link(self):
        t = Tracer()
        lane = t.interval("job", "job", 0.0, 5.0)
        wait = t.interval("job.wait", "job", 0.0, 2.0, parent=lane)
        assert wait.parent_id == lane.span_id

    def test_end_clamped_to_start(self):
        t = Tracer()
        s = t.interval("job", "job", 5.0, 3.0)
        assert s.start_ms == 5.0 and s.end_ms == 5.0
        assert s.duration_ms == 0.0
