"""Sliding-window time series over the modelled clock."""

import pytest

from repro.obs import TimeSeries, TimeSeriesStore, window_percentile


class TestWindowPercentile:
    def test_empty_is_zero(self):
        assert window_percentile([], 95) == 0.0

    def test_nearest_rank(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert window_percentile(vals, 50) == 20.0
        assert window_percentile(vals, 95) == 40.0
        assert window_percentile(vals, 100) == 40.0


class TestTimeSeries:
    def test_observations_land_in_their_window(self):
        ts = TimeSeries("lat", width_ms=10.0, keep=4)
        ts.observe(1.0, 5.0)
        ts.observe(9.0, 7.0)
        ts.observe(12.0, 100.0)
        ws = ts.windows()
        assert len(ws) == 2
        assert ws[0]["start_ms"] == 0.0 and ws[0]["end_ms"] == 10.0
        assert ws[0]["count"] == 2 and ws[0]["sum"] == 12.0
        assert ws[0]["min"] == 5.0 and ws[0]["max"] == 7.0
        assert ws[1]["count"] == 1 and ws[1]["last"] == 100.0

    def test_window_stats_and_percentiles(self):
        ts = TimeSeries("lat", width_ms=100.0)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            ts.observe(50.0, v)
        w = ts.windows()[0]
        assert w["mean"] == 3.0
        assert w["p50"] == 3.0 and w["p95"] == 5.0 and w["p99"] == 5.0
        assert w["rate_per_sec"] == 5 / 0.1

    def test_eviction_keeps_only_recent_windows(self):
        ts = TimeSeries("q", width_ms=10.0, keep=2)
        for t in (5.0, 15.0, 25.0, 35.0):
            ts.observe(t)
        assert len(ts.windows()) == 2
        assert ts.windows()[0]["start_ms"] == 20.0
        assert ts.total_count == 4          # totals survive eviction

    def test_late_observation_into_evicted_window_dropped(self):
        ts = TimeSeries("q", width_ms=10.0, keep=2)
        ts.observe(35.0)
        ts.observe(5.0)                     # long-evicted window
        assert ts.late_dropped == 1
        assert ts.total_count == 1

    def test_late_observation_into_retained_window_lands(self):
        """The serving pattern: a wait recorded at completion time
        against its submit time still lands in the right window."""
        ts = TimeSeries("wait", width_ms=10.0, keep=4)
        ts.observe(25.0, 1.0)
        ts.observe(3.0, 9.0)                # retroactive but retained
        assert ts.late_dropped == 0
        assert ts.windows()[0]["start_ms"] == 0.0
        assert ts.windows()[0]["sum"] == 9.0

    def test_add_busy_apportions_across_windows(self):
        ts = TimeSeries("util", width_ms=10.0, keep=8)
        ts.add_busy(5.0, 25.0)
        ws = ts.windows()
        assert [w["sum"] for w in ws] == [5.0, 10.0, 5.0]
        assert ts.total_sum == 20.0

    def test_add_busy_empty_interval_is_noop(self):
        ts = TimeSeries("util", width_ms=10.0)
        ts.add_busy(5.0, 5.0)
        assert ts.windows() == []

    def test_value_cap_drops_excess_raw_values(self):
        ts = TimeSeries("lat", width_ms=10.0, max_values=2)
        for v in (1.0, 2.0, 3.0):
            ts.observe(0.0, v)
        w = ts.windows()[0]
        assert w["count"] == 3 and w["value_drops"] == 1
        assert w["p50"] == 1.0              # percentile over retained only

    def test_recent_values_and_counts(self):
        ts = TimeSeries("lat", width_ms=10.0, keep=8)
        ts.observe(5.0, 1.0)
        ts.observe(15.0, 2.0)
        ts.observe(25.0, 3.0)
        assert ts.recent_values(2) == [2.0, 3.0]
        assert ts.recent_counts(2) == (2, 5.0)
        assert ts.recent_values() == [1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("x", width_ms=0)
        with pytest.raises(ValueError):
            TimeSeries("x", keep=0)


class TestTimeSeriesStore:
    def test_get_or_create_and_snapshot_order(self):
        store = TimeSeriesStore(width_ms=10.0)
        store.observe("zeta", 1.0)
        store.observe("alpha", 2.0, 5.0)
        snap = store.snapshot()
        assert list(snap["series"]) == ["alpha", "zeta"]
        assert snap["width_ms"] == 10.0
        assert store.get("missing") is None
        assert store.series("alpha") is store.series("alpha")

    def test_determinism_same_inputs_same_snapshot(self):
        def run():
            s = TimeSeriesStore(width_ms=5.0)
            for i in range(20):
                s.observe("lat", i * 1.7, i * 0.3)
                s.add_busy("util", i * 1.7, i * 1.7 + 0.5)
            return s.snapshot()
        assert run() == run()
