"""Smoke tests: every shipped example runs to completion.

Each example is executed in a subprocess (fresh interpreter, like a user
would run it).  Sizes inside the examples are modest, but the slowest two
are marked so `-m "not slow"` can skip them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "codegen_tour.py", "dome_auralization.py",
            "dsl_frontend.py", "performance_portability.py",
            "beyond_acoustics_gpr.py", "rewrite_exploration.py"} <= present


def test_quickstart():
    out = run_example("quickstart.py")
    assert "impulse-response samples" in out
    assert "boundary points" in out


def test_codegen_tour():
    out = run_example("codegen_tour.py")
    assert "__kernel void vecadd" in out
    assert "in place" in out
    assert "clEnqueueNDRangeKernel" in out


def test_dsl_frontend():
    out = run_example("dsl_frontend.py")
    assert "generated OpenCL kernels" in out
    assert "receiver RMS" in out


def test_rewrite_exploration():
    out = run_example("rewrite_exploration.py")
    assert out.count("True") >= 5        # every variant semantically equal
    assert "mapFusion" in out


def test_performance_portability():
    out = run_example("performance_portability.py")
    assert "TitanBlack" in out and "AMD7970" in out
    assert "workgroup-size sweep" in out


@pytest.mark.slow
def test_dome_auralization():
    out = run_example("dome_auralization.py")
    assert "RT60" in out
    assert "Schroeder decay" in out


@pytest.mark.slow
def test_beyond_acoustics_gpr():
    out = run_example("beyond_acoustics_gpr.py")
    assert "gpr_h_update" in out
    assert "A-scan" in out
