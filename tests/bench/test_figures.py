"""Tests for the table/figure regeneration harness.

Run at scale 1/4 (fast); the assertions target the paper's *qualitative*
claims, which must hold at any scale: LIFT ≈ handwritten, box ≥ dome,
the uniform room dips, FD-MM ≪ FI-MM throughput, boundary share FD > FI.
"""

import numpy as np
import pytest

from repro.bench import figures, harness, paper_data, report
from repro.bench.rooms import (PAPER_SHAPES, PAPER_SIZES, room_bundle,
                               scaled_dims)

SCALE = 4


@pytest.fixture(scope="module")
def fig5_rows():
    return figures.fig5_rows(scale=SCALE)


@pytest.fixture(scope="module")
def fig6_rows():
    return figures.fig6_rows(scale=SCALE)


def cell(rows, **match):
    out = [r for r in rows
           if all(r[k] == v for k, v in match.items())]
    assert len(out) == 1, f"ambiguous match {match}"
    return out[0]


class TestRooms:
    def test_scaled_dims(self):
        assert scaled_dims("602", 1) == (602, 402, 302)
        assert scaled_dims("602", 2) == (301, 201, 151)

    def test_scaled_dims_floor(self):
        assert min(scaled_dims("302", 100)) >= 8

    def test_bundle_cached(self):
        a = room_bundle("302", "box", SCALE)
        b = room_bundle("302", "box", SCALE)
        assert a is b

    def test_unknown_size(self):
        with pytest.raises(ValueError):
            room_bundle("999", "box", SCALE)

    def test_bundle_fields(self):
        b = room_bundle("302", "dome", SCALE)
        assert b.num_boundary_points == b.boundary_indices.size
        assert 0 <= b.contiguity <= 1
        assert b.name == f"dome-302/{SCALE}"


class TestTable2:
    def test_full_row_set(self):
        rows = figures.table2_rows(scale=SCALE)
        assert [r["size"] for r in rows] == ["602", "336", "302"]

    def test_box_has_more_boundary_points_than_dome(self):
        for r in figures.table2_rows(scale=SCALE):
            assert r["box_bpts"] > r["dome_bpts"]

    def test_paper_counts_attached(self):
        rows = figures.table2_rows(scale=SCALE)
        assert rows[0]["box_paper_bpts"] == 1_085_208
        assert rows[0]["dome_paper_bpts"] == 690_624

    def test_box_more_contiguous(self):
        for r in figures.table2_rows(scale=SCALE):
            assert r["box_contiguity"] > r["dome_contiguity"]


class TestTable3:
    def test_identical_to_paper(self):
        for r in figures.table3_rows():
            assert r["bandwidth_gbs"] == r["paper_bandwidth_gbs"]
            assert r["sp_gflops"] == r["paper_sp_gflops"]


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.fig4_rows(scale=SCALE)

    def test_cell_count(self, rows):
        # 4 devices x 3 sizes x 2 impls x 2 precisions
        assert len(rows) == 48

    def test_single_faster_than_double(self, rows):
        for device in ("TitanBlack", "GTX780", "AMD7970", "RadeonR9"):
            for size in PAPER_SIZES:
                s = cell(rows, device=device, size=size, impl="LIFT",
                         precision="single")
                d = cell(rows, device=device, size=size, impl="LIFT",
                         precision="double")
                assert s["time_ms"] < d["time_ms"]

    def test_lift_on_par_with_handwritten(self, rows):
        """The paper's headline: comparable performance (within ~35 %)."""
        for device in ("TitanBlack", "GTX780", "AMD7970", "RadeonR9"):
            for precision in ("single", "double"):
                l = cell(rows, device=device, size="602", impl="LIFT",
                         precision=precision)
                o = cell(rows, device=device, size="602", impl="OpenCL",
                         precision=precision)
                assert 0.65 <= l["time_ms"] / o["time_ms"] <= 1.35

    def test_throughput_consistency(self, rows):
        for r in rows:
            b = room_bundle(r["size"], "box", SCALE)
            expected = b.num_points / (r["time_ms"] * 1e-3) / 1e9
            assert r["gelems"] == pytest.approx(expected)


class TestFig5:
    def test_cell_count(self, fig5_rows):
        # 4 devices x 2 shapes x 3 sizes x 2 impls x 2 precisions
        assert len(fig5_rows) == 96

    def test_box_beats_dome(self, fig5_rows):
        for device in ("TitanBlack", "AMD7970"):
            for size in PAPER_SIZES:
                box = cell(fig5_rows, device=device, size=size, shape="box",
                           impl="LIFT", precision="single")
                dome = cell(fig5_rows, device=device, size=size,
                            shape="dome", impl="LIFT", precision="single")
                assert box["gelems"] > dome["gelems"]

    def test_uniform_336_dips(self, fig5_rows):
        """§VII-B1: the uniform 336³ room has lower throughput than the
        elongated 602 cuboid.  (At full scale it also dips below the 302
        room — see EXPERIMENTS.md; at test scale the 302 room is small
        enough for launch overhead to dominate its throughput, so only the
        602 comparison is scale-invariant.)"""
        for device in ("TitanBlack", "GTX780"):
            g336 = cell(fig5_rows, device=device, size="336", shape="box",
                        impl="LIFT", precision="single")["gelems"]
            g602 = cell(fig5_rows, device=device, size="602", shape="box",
                        impl="LIFT", precision="single")["gelems"]
            assert g336 < g602

    def test_uniform_336_less_contiguous(self):
        """The mechanism behind the dip: shorter unit-stride runs."""
        b336 = room_bundle("336", "box", SCALE)
        b602 = room_bundle("602", "box", SCALE)
        assert b336.contiguity < b602.contiguity

    def test_nvidia_double_lift_slower(self, fig5_rows):
        """§VII-B1: the constant-memory beta table makes the handwritten
        version faster in double precision on NVIDIA."""
        for device in ("TitanBlack", "GTX780"):
            l = cell(fig5_rows, device=device, size="602", shape="box",
                     impl="LIFT", precision="double")
            o = cell(fig5_rows, device=device, size="602", shape="box",
                     impl="OpenCL", precision="double")
            assert l["time_ms"] > o["time_ms"]

    def test_amd_parity(self, fig5_rows):
        for size in PAPER_SIZES:
            l = cell(fig5_rows, device="AMD7970", size=size, shape="box",
                     impl="LIFT", precision="double")
            o = cell(fig5_rows, device="AMD7970", size=size, shape="box",
                     impl="OpenCL", precision="double")
            assert l["time_ms"] == pytest.approx(o["time_ms"])

    def test_small_single_double_gap(self, fig5_rows):
        """Boundary kernels are sector-dominated: double costs far less
        than 2x single (Tables V–VI show near-parity)."""
        l_s = cell(fig5_rows, device="TitanBlack", size="602", shape="box",
                   impl="OpenCL", precision="single")
        l_d = cell(fig5_rows, device="TitanBlack", size="602", shape="box",
                   impl="OpenCL", precision="double")
        assert l_d["time_ms"] / l_s["time_ms"] < 1.8


class TestFig6:
    def test_cell_count(self, fig6_rows):
        assert len(fig6_rows) == 96

    def test_fd_mm_slower_than_fi_mm(self, fig5_rows, fig6_rows):
        """FD-MM does ~5x the memory work: throughput must drop."""
        for device in ("TitanBlack", "AMD7970"):
            fi = cell(fig5_rows, device=device, size="602", shape="box",
                      impl="LIFT", precision="double")
            fd = cell(fig6_rows, device=device, size="602", shape="box",
                      impl="LIFT", precision="double")
            assert fd["gelems"] < fi["gelems"]

    def test_fd_larger_precision_gap_than_fi(self, fig5_rows, fig6_rows):
        """§VII-B2: FD-MM shows a much bigger single/double difference."""
        def gap(rows):
            s = cell(rows, device="TitanBlack", size="602", shape="box",
                     impl="OpenCL", precision="single")["time_ms"]
            d = cell(rows, device="TitanBlack", size="602", shape="box",
                     impl="OpenCL", precision="double")["time_ms"]
            return d / s
        assert gap(fig6_rows) > gap(fig5_rows)

    def test_box_beats_dome(self, fig6_rows):
        for size in PAPER_SIZES:
            box = cell(fig6_rows, device="RadeonR9", size=size, shape="box",
                       impl="LIFT", precision="double")
            dome = cell(fig6_rows, device="RadeonR9", size=size,
                        shape="dome", impl="LIFT", precision="double")
            assert box["gelems"] > dome["gelems"]


class TestFig2:
    def test_rows(self):
        rows = figures.fig2_rows(scale=SCALE)
        assert len(rows) == 4
        keys = {(r["shape"], r["scheme"]) for r in rows}
        assert keys == {("box", "FI-MM"), ("box", "FD-MM"),
                        ("dome", "FI-MM"), ("dome", "FD-MM")}

    def test_fd_share_exceeds_fi(self):
        rows = figures.fig2_rows(scale=SCALE)
        by = {(r["shape"], r["scheme"]): r for r in rows}
        for shape in PAPER_SHAPES:
            assert by[(shape, "FD-MM")]["share_pct_max"] \
                > by[(shape, "FI-MM")]["share_pct_max"]

    def test_share_is_significant(self):
        """§II-F: boundary handling accounts for a significant share
        (paper: ~20 % for FD-MM)."""
        rows = figures.fig2_rows(scale=SCALE)
        fd_box = [r for r in rows if r["scheme"] == "FD-MM"
                  and r["shape"] == "box"][0]
        assert fd_box["share_pct_max"] > 10.0

    def test_shares_bounded(self):
        for r in figures.fig2_rows(scale=SCALE):
            for v in r["share_pct_by_size"].values():
                assert 0 < v < 100


class TestPaperData:
    def test_table4_complete(self):
        assert len(paper_data.TABLE4_FI) == 24  # 4 dev x 2 impl x 3 sizes

    def test_table5_complete(self):
        assert len(paper_data.TABLE5_FIMM) == 48

    def test_table6_complete(self):
        assert len(paper_data.TABLE6_FDMM) == 48

    def test_all_times_positive(self):
        for table in (paper_data.TABLE4_FI, paper_data.TABLE5_FIMM,
                      paper_data.TABLE6_FDMM):
            for s, d in table.values():
                assert s > 0 and d > 0

    def test_fi_throughput_helper(self):
        g = paper_data.fi_throughput_gelems("TitanBlack", "OpenCL", "602",
                                            "single")
        assert g == pytest.approx(602 * 402 * 302 / 8.19e-3 / 1e9, rel=1e-6)

    def test_boundary_throughput_helper(self):
        g = paper_data.boundary_throughput_gelems(
            paper_data.TABLE5_FIMM, "TitanBlack", "OpenCL", "602", "box",
            "single")
        assert g == pytest.approx(1_085_208 / 0.29e-3 / 1e9, rel=1e-6)


class TestReport:
    def test_renderers_produce_text(self):
        for name in ("table2", "fig2", "fig4", "fig5", "fig6"):
            out = report.RENDERERS[name](SCALE)
            assert len(out.splitlines()) > 3

    def test_table3_renderer(self):
        out = report.render_table3()
        assert "TitanBlack" in out and "337" in out
