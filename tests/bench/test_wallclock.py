"""Smoke tests for the host-wallclock benchmark and its regression gate.

The benchmark itself is timing (machine-dependent), so these tests only
pin the *structure* of the payload, the bit-identity re-verification it
performs, and the pass/fail semantics of ``check_regression`` — never
absolute speed.
"""

import copy

from repro.bench.wallclock import (HEADLINE_SCHEME, SCHEMES,
                                   check_regression, wallclock_benchmark)

# tiny room (scaled_dims floors at 8 per axis), minimal steps: the
# payload shape and bit-identity matter here, not the timings
TINY = dict(scale=64, steps=2, warmup=1, schemes=("fi",))


def test_payload_structure_and_bit_identity():
    p = wallclock_benchmark(**TINY)
    assert p["benchmark"] == "wallclock"
    assert p["room"]["size"] == "302"
    assert len(p["room"]["dims"]) == 3
    assert p["headline_scheme"] == HEADLINE_SCHEME
    assert set(SCHEMES) >= {r["scheme"] for r in p["results"]}
    for r in p["results"]:
        assert r["speedup"] > 0
        assert r["legacy"]["steps_per_sec"] > 0
        assert r["steady"]["seconds_per_step"] > 0
        # the benchmark re-proves legacy/steady bit-identity every run
        assert r["bit_identical"] is True
    assert p["all_bit_identical"] is True
    assert isinstance(p["meets_3x_target"], bool)
    assert p["speedup_geomean"] > 0


def _fake_payload(speedup=3.0, identical=True):
    return {"results": [{"scheme": "fi", "speedup": speedup,
                         "bit_identical": identical}]}


class TestCheckRegression:
    def test_passes_at_baseline(self):
        assert check_regression(_fake_payload(3.0), _fake_payload(3.0)) == []

    def test_passes_within_tolerance(self):
        # 20% tolerance: 2.5 against a 3.0 baseline is still OK
        assert check_regression(_fake_payload(2.5), _fake_payload(3.0)) == []

    def test_fails_below_tolerance_floor(self):
        msgs = check_regression(_fake_payload(2.0), _fake_payload(3.0))
        assert msgs and "regressed" in msgs[0]

    def test_fails_when_bit_identity_lost(self):
        msgs = check_regression(_fake_payload(5.0, identical=False),
                                _fake_payload(3.0))
        assert msgs and "bit-identical" in msgs[0]

    def test_unknown_scheme_in_payload_is_ignored(self):
        # a new scheme with no committed baseline must not fail CI
        payload = _fake_payload(3.0)
        payload["results"].append({"scheme": "new_scheme", "speedup": 1.0,
                                   "bit_identical": True})
        assert check_regression(payload, _fake_payload(3.0)) == []

    def test_baseline_shape_matches_committed_file(self):
        import json
        import pathlib
        base = json.loads(
            (pathlib.Path(__file__).parents[2] / "benchmarks"
             / "wallclock_baseline_scale6.json").read_text())
        # the committed baseline must stay consumable by check_regression
        fresh = copy.deepcopy(base)
        assert check_regression(fresh, base) == []
        fresh["results"][0]["speedup"] *= 0.5
        assert check_regression(fresh, base)
