"""Fault-tolerant benchmark sweeps: one bad cell no longer kills a campaign."""

import pytest

from repro.bench.harness import (SweepCell, fault_tolerant_sweep,
                                 modelled_time)
from repro.bench.rooms import room_bundle
from repro.gpu.errors import ClDeviceLost, ClInvalidValue


@pytest.fixture(scope="module")
def bundle():
    return room_bundle("302", "box", scale=16)


class TestFaultTolerantSweep:
    def test_all_cells_complete_despite_failures(self, bundle):
        keys = [("fi_mm", "single"), ("fi_mm", "double"),
                ("fd_mm", "single"), ("fd_mm", "double")]
        flaky_calls = {"n": 0}

        def compute(key):
            kind, precision = key
            if key == ("fd_mm", "single"):
                flaky_calls["n"] += 1
                if flaky_calls["n"] < 2:       # transient: first try fails
                    raise ClDeviceLost("device dropped mid-cell",
                                       injected=True)
            return modelled_time(kind, precision, "LIFT", "TitanBlack",
                                 bundle)

        cells = fault_tolerant_sweep(keys, compute)
        assert [c.key for c in cells] == keys
        assert all(c.ok for c in cells)
        flaky = next(c for c in cells if c.key == ("fd_mm", "single"))
        assert flaky.attempts == 2

    def test_persistent_failure_recorded_not_raised(self, bundle):
        def compute(key):
            if key == "bad":
                raise ClDeviceLost("gone for good")
            return modelled_time("fi_mm", "double", "LIFT", "TitanBlack",
                                 bundle)

        cells = fault_tolerant_sweep(["ok", "bad", "ok2"], compute,
                                     max_attempts=2)
        by_key = {c.key: c for c in cells}
        assert by_key["ok"].ok and by_key["ok2"].ok
        bad = by_key["bad"]
        assert not bad.ok
        assert bad.error == "CL_DEVICE_LOST"
        assert bad.attempts == 2

    def test_non_transient_error_not_retried(self, bundle):
        calls = {"n": 0}

        def compute(key):
            calls["n"] += 1
            raise ClInvalidValue("bad argument")     # programming error

        cells = fault_tolerant_sweep(["x"], compute, max_attempts=3)
        assert cells[0].error == "CL_INVALID_VALUE"
        assert calls["n"] == 1

    def test_real_bugs_still_propagate(self, bundle):
        def compute(key):
            raise TypeError("not an operational fault")

        with pytest.raises(TypeError):
            fault_tolerant_sweep(["x"], compute)
