"""Tests for the experiment registry and its consistency with the repo."""

import pathlib

import pytest

from repro.bench.experiments import EXPERIMENTS, Experiment, render_index

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_every_paper_artifact_present(self):
        ids = set(EXPERIMENTS)
        assert {"table2", "table3", "fig2", "fig4", "fig5", "fig6",
                "counts"} <= ids

    def test_bench_targets_exist(self):
        for e in EXPERIMENTS.values():
            path = e.bench_target.split("::")[0]
            assert (REPO / path).exists(), f"{e.id}: missing {path}"

    def test_modules_importable(self):
        import importlib
        for e in EXPERIMENTS.values():
            for mod in e.modules:
                # entries may name module.attribute
                parts = mod.split(".")
                for cut in range(len(parts), 1, -1):
                    try:
                        m = importlib.import_module(".".join(parts[:cut]))
                        break
                    except ModuleNotFoundError:
                        continue
                else:
                    pytest.fail(f"{e.id}: cannot import {mod}")
                rest = parts[cut:]
                obj = m
                for attr in rest:
                    obj = getattr(obj, attr)

    def test_cli_names_valid(self):
        from repro.bench.report import RENDERERS
        for e in EXPERIMENTS.values():
            if e.cli.startswith("python -m repro.bench "):
                name = e.cli.split()[-1]
                assert name in RENDERERS

    def test_render_index(self):
        text = render_index()
        for e in EXPERIMENTS.values():
            assert e.id in text
            assert e.paper_artifact in text

    def test_frozen(self):
        e = next(iter(EXPERIMENTS.values()))
        with pytest.raises(Exception):
            e.id = "changed"  # type: ignore[misc]
