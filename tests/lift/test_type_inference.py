"""Tests for the typing rules of every pattern (repro.lift.type_inference)."""

import pytest

from repro.lift.arith import Var
from repro.lift.ast import BinOp, FunCall, Lambda, Param, Select, UnaryOp, lam, lit
from repro.lift.patterns import (ArrayAccess, ArrayAccess3, ArrayCons,
                                 Concat, Get, Id, Iota, Iterate, Join, Map,
                                 Map3D, Pad, Pad3D, Reduce, Skip, Slide,
                                 Slide3D, Split, ToGPU, ToHost, Transpose,
                                 TupleCons, WriteTo, Zip, Zip3D)
from repro.lift.type_inference import infer, promote
from repro.lift.types import (ArrayType, Bool, Double, Float, Int, Long,
                              TupleType, TypeError_, array)

N = Var("N")


def arr(t=Float, n=N):
    return Param("A", ArrayType(t, n))


class TestScalarRules:
    def test_promote(self):
        assert promote(Float, Int) is Float
        assert promote(Int, Double) is Double
        assert promote(Float, Float) is Float

    def test_binop_promotion(self):
        e = BinOp("*", lit(2, Int), lit(3.0, Double))
        assert infer(e) is Double

    def test_comparison_is_bool(self):
        e = BinOp("<", lit(1, Int), lit(2, Int))
        assert infer(e) is Bool

    def test_select(self):
        e = Select(BinOp(">", lit(1, Int), lit(0, Int)), lit(1.0, Float),
                   lit(0, Int))
        assert infer(e) is Float

    def test_select_requires_bool_cond(self):
        with pytest.raises(TypeError_):
            infer(Select(lit(1.5, Float), lit(1, Int), lit(0, Int)))

    def test_unary(self):
        assert infer(UnaryOp("sqrt", lit(2.0, Double))) is Double
        assert infer(UnaryOp("sqrt", lit(2, Int))) is Float
        assert infer(UnaryOp("toInt", lit(2.0, Float))) is Int
        assert infer(UnaryOp("neg", lit(2.0, Float))) is Float

    def test_binop_on_array_rejected(self):
        a = arr()
        with pytest.raises(TypeError_):
            infer(BinOp("+", a, a))


class TestMapReduce:
    def test_map(self):
        a = arr()
        f = lam(Float, lambda x: BinOp("*", x, x))
        t = infer(FunCall(Map(f), a))
        assert t == ArrayType(Float, N)

    def test_map_narrowing_rejected(self):
        a = arr(Double)
        f = lam(Int, lambda x: x)  # double elements cannot narrow to int
        with pytest.raises(TypeError_):
            infer(FunCall(Map(f), a))

    def test_map_over_non_array(self):
        with pytest.raises(TypeError_):
            infer(FunCall(Map(lam(Float, lambda x: x)), lit(1.0, Float)))

    def test_map_allows_widening(self):
        a = arr(Int)
        f = lam(Double, lambda x: x)  # int elements widen to double
        t = infer(FunCall(Map(f), a))
        assert t == ArrayType(Double, N)

    def test_reduce(self):
        a = arr()
        f = lam([Float, Float], lambda acc, x: BinOp("+", acc, x))
        t = infer(FunCall(Reduce(f, 0.0), a))
        assert t is Float

    def test_map3d(self):
        a = Param("G", array(Float, Var("a"), Var("b"), Var("c")))
        f = lam(Float, lambda x: x)
        t = infer(FunCall(Map3D(f), a))
        assert t == array(Float, Var("a"), Var("b"), Var("c"))

    def test_map3d_requires_rank3(self):
        with pytest.raises(TypeError_):
            infer(FunCall(Map3D(lam(Float, lambda x: x)), arr()))


class TestReorganisation:
    def test_zip(self):
        a, b = arr(), Param("B", ArrayType(Int, N))
        t = infer(FunCall(Zip(2), a, b))
        assert t == ArrayType(TupleType(Float, Int), N)

    def test_zip_mismatched_constant_lengths(self):
        a = Param("A", ArrayType(Float, 4))
        b = Param("B", ArrayType(Float, 5))
        with pytest.raises(TypeError_):
            infer(FunCall(Zip(2), a, b))

    def test_get(self):
        a, b = arr(), Param("B", ArrayType(Int, N))
        z = FunCall(Zip(2), a, b)
        p = Param("p", TupleType(Float, Int))
        f = Lambda([p], FunCall(Get(1), p))
        t = infer(FunCall(Map(f), z))
        assert t == ArrayType(Int, N)

    def test_get_out_of_range(self):
        p = Param("p", TupleType(Float, Int))
        with pytest.raises(TypeError_):
            infer(FunCall(Get(5), p))

    def test_tuple_cons(self):
        t = infer(FunCall(TupleCons(2), lit(1.0, Float), lit(2, Int)))
        assert t == TupleType(Float, Int)

    def test_split(self):
        a = Param("A", ArrayType(Float, 12))
        t = infer(FunCall(Split(4), a))
        assert t == ArrayType(ArrayType(Float, 4), 3)

    def test_join(self):
        a = Param("A", array(Float, 3, 4))
        t = infer(FunCall(Join(), a))
        assert t == ArrayType(Float, 12)

    def test_split_join_roundtrip_type(self):
        a = Param("A", ArrayType(Float, 12))
        t = infer(FunCall(Join(), FunCall(Split(4), a)))
        assert t == ArrayType(Float, 12)

    def test_transpose(self):
        a = Param("A", array(Float, 3, 4))
        t = infer(FunCall(Transpose(), a))
        assert t == array(Float, 4, 3)

    def test_slide(self):
        a = Param("A", ArrayType(Float, 10))
        t = infer(FunCall(Slide(3, 1), a))
        assert t == ArrayType(ArrayType(Float, 3), 8)

    def test_slide_with_step(self):
        a = Param("A", ArrayType(Float, 10))
        t = infer(FunCall(Slide(4, 2), a))
        assert t == ArrayType(ArrayType(Float, 4), 4)

    def test_pad(self):
        a = Param("A", ArrayType(Float, N))
        t = infer(FunCall(Pad(1, 2, 0.0), a))
        assert t.size == N + 3

    def test_slide3d(self):
        a = Param("G", array(Float, 5, 6, 7))
        t = infer(FunCall(Slide3D(3, 1), a))
        assert t.shape()[:3] == (Var("x") * 0 + 3, Var("x") * 0 + 4,
                                 Var("x") * 0 + 5)
        inner = t.elem.elem.elem
        assert inner == array(Float, 3, 3, 3)

    def test_pad3d(self):
        a = Param("G", array(Float, 5, 6, 7))
        t = infer(FunCall(Pad3D(1, 1, 0.0), a))
        assert t.shape() == (Var("x") * 0 + 7, Var("x") * 0 + 8,
                             Var("x") * 0 + 9)

    def test_iota(self):
        t = infer(FunCall(Iota(N)))
        assert t == ArrayType(Int, N)

    def test_id(self):
        a = arr()
        assert infer(FunCall(Id(), a)) == ArrayType(Float, N)

    def test_iterate(self):
        a = arr()
        f = Lambda([Param("x", ArrayType(Float, N))],
                   FunCall(Map(lam(Float, lambda v: v)),
                           Param("x", ArrayType(Float, N))))
        # simpler: identity via Id
        t = infer(FunCall(Iterate(3, Id()), a))
        assert t == ArrayType(Float, N)


class TestAccess:
    def test_array_access(self):
        a = arr()
        t = infer(FunCall(ArrayAccess(), a, lit(2, Int)))
        assert t is Float

    def test_array_access_requires_int(self):
        a = arr()
        with pytest.raises(TypeError_):
            infer(FunCall(ArrayAccess(), a, lit(2.0, Float)))

    def test_array_access3(self):
        g = Param("G", array(Float, 3, 3, 3))
        t = infer(FunCall(ArrayAccess3(), g, lit(1, Int), lit(1, Int),
                          lit(1, Int)))
        assert t is Float

    def test_array_access3_requires_rank3(self):
        with pytest.raises(TypeError_):
            infer(FunCall(ArrayAccess3(), arr(), lit(0, Int), lit(0, Int),
                          lit(0, Int)))


class TestNewPrimitives:
    def test_writeto_same(self):
        a, b = arr(), Param("B", ArrayType(Float, N))
        assert infer(FunCall(WriteTo(), a, b)) == ArrayType(Float, N)

    def test_writeto_rows(self):
        a = arr()
        rows = Param("R", ArrayType(ArrayType(Float, N), Var("K")))
        assert infer(FunCall(WriteTo(), a, rows)) == ArrayType(Float, N)

    def test_writeto_effects(self):
        a = arr()
        eff = Param("E", ArrayType(TupleType(Float, Float), Var("K")))
        assert infer(FunCall(WriteTo(), a, eff)) == ArrayType(Float, N)

    def test_writeto_rejects_mismatch(self):
        a = arr()
        with pytest.raises(TypeError_):
            infer(FunCall(WriteTo(), a, Param("B", ArrayType(Int, N))))

    def test_concat(self):
        a = Param("A", ArrayType(Float, 3))
        b = Param("B", ArrayType(Float, 4))
        t = infer(FunCall(Concat(2), a, b))
        assert t.size.as_constant() == 7

    def test_concat_symbolic_sum(self):
        i = Var("idx")
        parts = FunCall(Concat(3), FunCall(Skip(Float, i)),
                        FunCall(ArrayCons(1), lit(1.0, Float)),
                        FunCall(Skip(Float, N - 1 - i)))
        t = infer(parts)
        # idx + 1 + (N - 1 - idx) simplifies to N
        assert t.size == N

    def test_skip(self):
        t = infer(FunCall(Skip(Float, 5)))
        assert t == ArrayType(Float, 5)

    def test_array_cons(self):
        t = infer(FunCall(ArrayCons(3), lit(6, Int)))
        assert t == ArrayType(Int, 3)

    def test_togpu_tohost_identity(self):
        a = arr()
        assert infer(FunCall(ToGPU(), a)) == ArrayType(Float, N)
        assert infer(FunCall(ToHost(), a)) == ArrayType(Float, N)


class TestLambdaApplication:
    def test_arity_mismatch(self):
        f = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        with pytest.raises(TypeError_):
            infer(FunCall(f, lit(1.0, Float)))

    def test_param_type_mismatch(self):
        f = lam([ArrayType(Float, N)], lambda a: a)
        with pytest.raises(TypeError_):
            infer(FunCall(f, lit(1.0, Float)))

    def test_scalar_widening_allowed(self):
        f = lam([Double], lambda a: a)
        assert infer(FunCall(f, lit(1.0, Float))) is Double
