"""Tests for the symbolic arithmetic layer (repro.lift.arith)."""

import pytest
from hypothesis import given, strategies as st

from repro.lift.arith import (ArithError, Cst, IntDiv, Mod, Prod, Sum, Var,
                              fresh_var, to_arith)


class TestConstruction:
    def test_cst_value(self):
        assert Cst(5).value == 5

    def test_cst_rejects_non_int(self):
        with pytest.raises(ArithError):
            Cst(1.5)

    def test_cst_rejects_bool(self):
        with pytest.raises(ArithError):
            Cst(True)

    def test_var_name(self):
        assert Var("N").name == "N"

    def test_var_rejects_empty(self):
        with pytest.raises(ArithError):
            Var("")

    def test_to_arith_int(self):
        assert to_arith(7) == Cst(7)

    def test_to_arith_passthrough(self):
        v = Var("x")
        assert to_arith(v) is v

    def test_to_arith_rejects_bool(self):
        with pytest.raises(ArithError):
            to_arith(True)

    def test_to_arith_rejects_float(self):
        with pytest.raises(ArithError):
            to_arith(1.5)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Cst(1).value = 2
        with pytest.raises(AttributeError):
            Var("x").name = "y"


class TestSimplification:
    def test_constant_folding_sum(self):
        assert Cst(2) + Cst(3) == Cst(5)

    def test_constant_folding_product(self):
        assert Cst(4) * Cst(5) == Cst(20)

    def test_add_zero(self):
        x = Var("x")
        assert x + 0 == x

    def test_mul_one(self):
        x = Var("x")
        assert x * 1 == x

    def test_mul_zero(self):
        assert Var("x") * 0 == Cst(0)

    def test_sub_self_not_required_but_sum_flattening(self):
        x = Var("x")
        e = (x + 1) + (x + 2)
        assert e.evaluate({"x": 10}) == 23

    def test_nested_sums_flatten(self):
        x, y = Var("x"), Var("y")
        e = (x + y) + (x + y)
        assert isinstance(e, Sum)
        assert e.evaluate({"x": 1, "y": 2}) == 6

    def test_div_by_one(self):
        x = Var("x")
        assert x // 1 == x

    def test_div_self(self):
        x = Var("x")
        assert x // x == Cst(1)

    def test_div_constants(self):
        assert Cst(7) // Cst(2) == Cst(3)

    def test_div_by_zero_constant(self):
        with pytest.raises(ArithError):
            Cst(1) // Cst(0)

    def test_mod_by_one(self):
        assert Var("x") % 1 == Cst(0)

    def test_mod_self(self):
        x = Var("x")
        assert x % x == Cst(0)

    def test_mod_constants(self):
        assert Cst(7) % Cst(3) == Cst(1)

    def test_neg(self):
        assert (-Cst(3)) == Cst(-3)

    def test_commutative_sums_equal(self):
        x, y = Var("x"), Var("y")
        assert x + y == y + x

    def test_commutative_products_equal(self):
        x, y = Var("x"), Var("y")
        assert x * y == y * x


class TestEvaluate:
    def test_evaluate_constant(self):
        assert Cst(5).evaluate() == 5

    def test_evaluate_var(self):
        assert Var("n").evaluate({"n": 9}) == 9

    def test_unbound_var_raises(self):
        with pytest.raises(ArithError):
            Var("n").evaluate({})

    def test_compound(self):
        n = Var("n")
        e = (n * 3 + 1) // 2
        assert e.evaluate({"n": 5}) == 8

    def test_rsub_rmul_radd(self):
        n = Var("n")
        assert (10 - n).evaluate({"n": 4}) == 6
        assert (10 * n).evaluate({"n": 4}) == 40
        assert (10 + n).evaluate({"n": 4}) == 14

    def test_as_constant(self):
        assert (Cst(3) * Cst(4)).as_constant() == 12
        assert (Var("x") + 1).as_constant() is None


class TestFreeVarsAndSubstitute:
    def test_free_vars(self):
        e = Var("a") * Var("b") + 3
        assert e.free_vars() == {"a", "b"}

    def test_substitute_var(self):
        e = Var("n") + 1
        assert e.substitute({"n": 4}) == Cst(5)

    def test_substitute_with_expr(self):
        e = Var("n") * 2
        e2 = e.substitute({"n": Var("m") + 1})
        assert e2.evaluate({"m": 3}) == 8

    def test_substitute_leaves_others(self):
        e = Var("n") + Var("m")
        e2 = e.substitute({"n": 1})
        assert e2.free_vars() == {"m"}

    def test_substitute_div_mod(self):
        e = (Var("n") // Var("d")) + (Var("n") % Var("d"))
        assert e.substitute({"n": 7, "d": 3}) == Cst(3)


class TestToC:
    def test_var(self):
        assert Var("N").to_c() == "N"

    def test_cst(self):
        assert Cst(42).to_c() == "42"

    def test_product(self):
        c = (Var("a") * Var("b")).to_c()
        assert "a" in c and "b" in c and "*" in c

    def test_div_mod(self):
        assert (Var("a") // Var("b")).to_c() == "(a/b)"
        assert (Var("a") % Var("b")).to_c() == "(a%b)"

    def test_c_text_is_deterministic(self):
        e1 = Var("x") + Var("y") * 2
        e2 = Var("x") + Var("y") * 2
        assert e1.to_c() == e2.to_c()


class TestFreshVar:
    def test_unique(self):
        a, b = fresh_var("i"), fresh_var("i")
        assert a.name != b.name

    def test_prefix(self):
        assert fresh_var("gid").name.startswith("gid")


# --- property-based: the symbolic algebra agrees with Python ints ----------

_small_int = st.integers(min_value=-20, max_value=20)


@st.composite
def _expr_and_env(draw, depth=0):
    """Random (ArithExpr, env, python_value) triples."""
    choice = draw(st.integers(0, 5 if depth < 3 else 1))
    if choice == 0:
        v = draw(_small_int)
        return Cst(v), {}, v
    if choice == 1:
        name = draw(st.sampled_from(["a", "b", "c"]))
        val = draw(_small_int)
        return Var(name), {name: val}, val
    l, le, lv = draw(_expr_and_env(depth=depth + 1))
    r, re, rv = draw(_expr_and_env(depth=depth + 1))
    env = {**le, **re}

    def safe_eval(e):
        try:
            return e.evaluate(env)
        except ArithError:
            return None

    # re-evaluate sub-values under the merged env (name collisions can
    # change nested divisors, so guard against division by zero)
    lv, rv = safe_eval(l), safe_eval(r)
    if lv is None or rv is None:
        return Cst(0), {}, 0
    if choice == 2:
        return l + r, env, lv + rv
    if choice == 3:
        return l * r, env, lv * rv
    if choice == 4:
        return l - r, env, lv - rv
    if rv == 0:
        return l + r, env, lv + rv
    try:
        e = l // r
        ev = safe_eval(e)
    except ArithError:
        return l + r, env, lv + rv
    if ev is None:
        return l + r, env, lv + rv
    return e, env, lv // rv


@given(_expr_and_env())
def test_symbolic_matches_python(data):
    expr, env, expected = data
    assert expr.evaluate(env) == expected


@given(_expr_and_env(), _small_int)
def test_substitution_then_evaluation_commutes(data, val):
    expr, env, _ = data
    if "a" not in expr.free_vars():
        return
    env2 = dict(env)
    env2["a"] = val
    try:
        expected = expr.evaluate(env2)
    except ArithError:
        return  # substitution made a divisor zero; nothing to compare
    try:
        substituted = expr.substitute({"a": val})
    except ArithError:
        return  # simplification detects the zero divisor eagerly — also fine
    assert substituted.evaluate(env2) == expected


@given(_expr_and_env())
def test_equality_is_hash_consistent(data):
    expr, _, _ = data
    clone = expr.substitute({})
    assert clone == expr
    assert hash(clone) == hash(expr)
