"""Tests for the host code generator (repro.lift.codegen.host)."""

import pytest

from repro.lift.arith import Var
from repro.lift.ast import BinOp, FunCall, Lambda, Param, lam
from repro.lift.codegen.host import (ArgBinding, CopyIn, CopyOut,
                                     HostCodegenError, Launch, compile_host)
from repro.lift.patterns import Map, OclKernel, ToGPU, ToHost, WriteTo
from repro.lift.types import ArrayType, Float, Int

from repro.acoustics.lift_programs import two_kernel_host

N = Var("N")


def simple_host_program():
    """ToHost(OclKernel(map(*2), ToGPU(A)))"""
    A = Param("A", ArrayType(Float, N))
    x = Param("x", Float)
    kernel = Lambda([Param("inp", ArrayType(Float, N))],
                    FunCall(Map(Lambda([x], BinOp("*", x, 2.0))),
                            Param("inp", ArrayType(Float, N))))
    # rebuild with a shared param object
    inp = Param("inp", ArrayType(Float, N))
    kernel = Lambda([inp], FunCall(Map(Lambda([x], BinOp("*", x, 2.0))), inp))
    launch = FunCall(OclKernel(kernel, "double_kernel"), FunCall(ToGPU(), A))
    return Lambda([A], FunCall(ToHost(), launch))


class TestSimpleProgram:
    def test_plan_op_sequence(self):
        h = compile_host(simple_host_program(), "prog")
        kinds = [type(o).__name__ for o in h.plan.ops]
        assert kinds == ["CopyIn", "Launch", "CopyOut"]

    def test_buffer_allocated_for_input_and_output(self):
        h = compile_host(simple_host_program(), "prog")
        assert len(h.plan.buffers) == 2  # d_A and d_out

    def test_source_contains_cl_calls(self):
        src = compile_host(simple_host_program(), "prog").source
        for call in ("clCreateBuffer", "clEnqueueWriteBuffer",
                     "clSetKernelArg", "clEnqueueNDRangeKernel",
                     "clEnqueueReadBuffer"):
            assert call in src

    def test_kernel_compiled(self):
        h = compile_host(simple_host_program(), "prog")
        assert "double_kernel" in h.kernels
        assert "__kernel void double_kernel" in h.kernels["double_kernel"].source

    def test_launch_bindings(self):
        h = compile_host(simple_host_program(), "prog")
        launch = [o for o in h.plan.ops if isinstance(o, Launch)][0]
        kinds = [b.kind for b in launch.args]
        assert "buffer" in kinds and "size" in kinds

    def test_result_buffer_set(self):
        h = compile_host(simple_host_program(), "prog")
        assert h.plan.result_buffer is not None


class TestListing5:
    def test_two_kernels(self):
        h = compile_host(two_kernel_host("fi_mm", "single").program, "ac")
        launches = [o for o in h.plan.ops if isinstance(o, Launch)]
        assert len(launches) == 2
        assert launches[0].kernel.name == "volume_handling_kernel"
        assert launches[1].kernel.name == "boundary_handling_kernel"

    def test_boundary_kernel_writes_in_place(self):
        h = compile_host(two_kernel_host("fi_mm", "single").program, "ac")
        launches = [o for o in h.plan.ops if isinstance(o, Launch)]
        assert launches[0].out_buffer is not None   # volume allocates
        assert launches[1].out_buffer is None       # boundary is in place

    def test_synchronisation_between_kernels(self):
        src = compile_host(two_kernel_host("fi_mm", "single").program,
                           "ac").source
        assert "clFinish" in src

    def test_shared_buffer_reuse(self):
        """neighbors is uploaded once and passed to both kernels."""
        h = compile_host(two_kernel_host("fi_mm", "double").program, "ac")
        copyins = [o for o in h.plan.ops if isinstance(o, CopyIn)]
        assert [o.host_name for o in copyins].count("neighbors") == 1

    def test_fd_mm_variant(self):
        h = compile_host(two_kernel_host("fd_mm", "double", 3).program, "ac")
        launches = [o for o in h.plan.ops if isinstance(o, Launch)]
        assert len(launches) == 2
        names = [b.param_name for b in launches[1].args]
        for expected in ("BI", "DI", "F", "D", "g1", "vel_prev", "vel_next"):
            assert expected in names

    def test_result_is_volume_output(self):
        h = compile_host(two_kernel_host("fi_mm", "single").program, "ac")
        launches = [o for o in h.plan.ops if isinstance(o, Launch)]
        assert h.plan.result_buffer == launches[0].out_buffer


class TestErrors:
    def test_kernel_arg_without_togpu(self):
        A = Param("A", ArrayType(Float, N))
        inp = Param("inp", ArrayType(Float, N))
        x = Param("x", Float)
        kernel = Lambda([inp], FunCall(Map(Lambda([x], x)), inp))
        prog = Lambda([A], FunCall(OclKernel(kernel, "k"), A))  # missing ToGPU
        with pytest.raises(HostCodegenError):
            compile_host(prog, "bad")

    def test_writeto_requires_kernel_value(self):
        A = Param("A", ArrayType(Float, N))
        ga = FunCall(ToGPU(), A)
        prog = Lambda([A], FunCall(WriteTo(), ga, ga))
        with pytest.raises(HostCodegenError):
            compile_host(prog, "bad")
