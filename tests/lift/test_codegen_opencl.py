"""Golden-structure tests for the OpenCL C generator.

These assert the *load-bearing* lines of the generated kernels (signature,
loop structure, in-place stores, private arrays) rather than full golden
files, so cosmetic changes to temporaries don't break them.
"""

import pytest

from repro.lift.arith import Var
from repro.lift.ast import BinOp, FunCall, Lambda, Param, lam, lit
from repro.lift.codegen.opencl import CodegenError, compile_kernel
from repro.lift.patterns import (ArrayAccess, ArrayCons, Concat, Get, Id,
                                 Iota, Map, Pad, Reduce, Skip, Slide,
                                 Transpose, WriteTo, Zip)
from repro.lift.types import ArrayType, Double, Float, Int, TupleType

from repro.acoustics.lift_programs import (fd_mm_boundary, fi_fused_3d,
                                           fi_mm_boundary, volume_kernel)

N = Var("N")


def vecadd_prog():
    A = Param("A", ArrayType(Float, N))
    B = Param("B", ArrayType(Float, N))
    p = Param("p", TupleType(Float, Float))
    body = FunCall(Map(Lambda([p], BinOp("+", FunCall(Get(0), p),
                                         FunCall(Get(1), p)))),
                   FunCall(Zip(2), A, B))
    return Lambda([A, B], body)


class TestVecadd:
    def test_signature(self):
        src = compile_kernel(vecadd_prog(), "vecadd").source
        assert "__kernel void vecadd(__global float* A, __global float* B, " \
               "int N, __global float* out)" in src

    def test_gid_loop(self):
        src = compile_kernel(vecadd_prog(), "vecadd").source
        assert "get_global_id(0)" in src
        assert "get_global_size(0)" in src

    def test_loads_into_temporaries(self):
        # the paper's §III-A example: tmp = A[i]; tmp2 = B[i]; out[i] = ...
        src = compile_kernel(vecadd_prog(), "vecadd").source
        assert "= A[" in src and "= B[" in src
        assert "out[" in src

    def test_global_size_metadata(self):
        ks = compile_kernel(vecadd_prog(), "vecadd")
        assert ks.global_size == N

    def test_balanced_braces(self):
        src = compile_kernel(vecadd_prog(), "vecadd").source
        assert src.count("{") == src.count("}")


class TestStencil1D:
    def _src(self):
        A = Param("A", ArrayType(Float, N))
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        prog = Lambda([A], FunCall(Map(Reduce(add, 0.0)),
                                   FunCall(Slide(3, 1),
                                           FunCall(Pad(1, 1, 0.0), A))))
        return compile_kernel(prog, "stencil1d").source

    def test_accumulator(self):
        src = self._src()
        assert "float acc_0 = 0.0f;" in src

    def test_pad_becomes_guard(self):
        src = self._src()
        assert "?" in src and "0.0f" in src  # no halo copy, just a select

    def test_unrolled_window(self):
        # constant window of 3 -> unrolled, no inner loop
        src = self._src()
        assert src.count("acc_0 = ") >= 3


class TestInPlace:
    def _prog(self):
        M, K = Var("M"), Var("K")
        inp = Param("input", ArrayType(Float, M))
        idxs = Param("indices", ArrayType(Int, K))
        i = Param("i", Int)
        newv = BinOp("*", FunCall(ArrayAccess(), inp, i), 2.0)
        row = FunCall(Concat(3), FunCall(Skip(Float, i.arith)),
                      FunCall(Map(Id()), FunCall(ArrayCons(1), newv)),
                      FunCall(Skip(Float, M - 1 - i.arith)))
        return Lambda([inp, idxs],
                      FunCall(WriteTo(), inp,
                              FunCall(Map(Lambda([i], row)), idxs)))

    def test_no_out_parameter(self):
        ks = compile_kernel(self._prog(), "inplace")
        assert not any(p.name == "out" for p in ks.params)
        assert not ks.allocation.allocates_output

    def test_writes_back_to_input(self):
        src = compile_kernel(self._prog(), "inplace").source
        assert "input[" in src.split("=")[0] or "input[i_0" in src

    def test_skip_generates_no_code(self):
        src = compile_kernel(self._prog(), "inplace").source
        # exactly one store per iteration: the single data element
        stores = [l for l in src.splitlines() if "input[" in l and "=" in l
                  and "float" not in l and "int" not in l]
        assert len(stores) == 1


class TestAcousticsKernels:
    def test_fi_mm_signature_matches_listing7(self):
        src = compile_kernel(fi_mm_boundary("single").kernel,
                             "fi_mm_boundary").source
        assert "__global int* boundaryIndices" in src
        assert "__global int* material" in src
        assert "__global float* beta" in src
        assert "__global float* next" in src
        # in place: writes to next, no out buffer
        assert "__global float* out" not in src

    def test_fi_mm_boundary_update_expression(self):
        src = compile_kernel(fi_mm_boundary("double").kernel, "k").source
        # the (next + cf*prev) / (1 + cf) update of Listing 3
        assert "/ (1.0 + cf" in src

    def test_fd_mm_private_branch_arrays(self):
        src = compile_kernel(fd_mm_boundary("double", 3).kernel, "k").source
        # the paper's _g1[MB] / _v2[MB] local temporaries
        assert "double priv_0[3];" in src
        assert "double priv_1[3];" in src

    def test_fd_mm_three_inplace_arrays(self):
        src = compile_kernel(fd_mm_boundary("double", 3).kernel, "k").source
        assert "next[" in src
        assert "vel_next[" in src
        assert "g1[" in src

    def test_fd_mm_branch_loops(self):
        src = compile_kernel(fd_mm_boundary("double", 4).kernel, "k").source
        assert "< 4" in src  # MB-branch loops

    def test_volume_kernel_gathers(self):
        src = compile_kernel(volume_kernel("single").kernel, "vol").source
        for pat in ("curr[", "prev[", "nbrs["):
            assert pat in src
        assert "? " in src  # the nbr > 0 select

    def test_fused_3d_uses_3d_ids(self):
        src = compile_kernel(fi_fused_3d("double").kernel, "fi3d").source
        assert "get_global_id(0)" in src
        assert "get_global_id(1)" in src
        assert "get_global_id(2)" in src

    def test_fused_3d_seven_point_stencil(self):
        src = compile_kernel(fi_fused_3d("double").kernel, "fi3d").source
        assert src.count("curr[") == 7  # centre + 6 neighbours, each once

    def test_precision_threading(self):
        s1 = compile_kernel(fi_mm_boundary("single").kernel, "k").source
        s2 = compile_kernel(fi_mm_boundary("double").kernel, "k").source
        assert "float" in s1 and "__global double* beta" in s2


class TestErrors:
    def test_unsupported_pattern(self):
        from repro.lift.types import array
        A = Param("A", array(Float, 3, 4))
        prog = Lambda([A], FunCall(Transpose(), A))
        with pytest.raises(CodegenError):
            compile_kernel(prog, "bad")

    def test_tuple_param_rejected(self):
        t = Param("t", TupleType(Float, Float))
        prog = Lambda([t], FunCall(Get(0), t))
        with pytest.raises(CodegenError):
            compile_kernel(prog, "bad")
