"""The backend-neutral ArenaProgram artifact and its two emitters.

The lowering contract of the codegen tree is: one
:class:`~repro.lift.codegen.arena.ArenaProgram` per kernel, consumed by
*every* executable emitter (the vectorised NumPy-steady emitter and the
compiled fused-loop emitter).  These tests pin

* the IR itself, as a golden ``dump()`` snapshot, so emitter refactors
  can't silently change the lowering they all share;
* the lower-once-feed-both property: the loop emitter consumes the
  *same object* the NumPy emitter rendered its source from;
* the pure-python loop tier's bit-identity against the NumPy-steady
  reference, end to end through a real simulation (the compiled
  numba/cc tiers are covered machine-independently by the
  cross-backend matrix in ``tests/acoustics``).

To refresh the golden file after an *intentional* lowering change:

    python tests/lift/test_arena_program.py --regen
"""

import pathlib
import sys
import warnings

import numpy as np
import pytest

from repro.acoustics.lift_programs import fi_fused_flat, fi_mm_boundary
from repro.lift.codegen.loops import (LoopsUnsupported, available_tiers,
                                      compile_loops)
from repro.lift.codegen.numpy_backend import compile_numpy

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _artefacts():
    return {
        "fi_fused_flat_double.ir.txt":
            compile_numpy(fi_fused_flat("double").kernel, "fi_fused_flat",
                          steady=True).program.dump() + "\n",
        "fi_mm_boundary_double.ir.txt":
            compile_numpy(fi_mm_boundary("double").kernel, "fi_mm_boundary",
                          steady=True).program.dump() + "\n",
    }


@pytest.mark.parametrize("name", sorted(_artefacts()))
def test_arena_ir_matches_snapshot(name):
    expected = (GOLDEN / name).read_text()
    actual = _artefacts()[name]
    assert actual == expected, (
        f"ArenaProgram lowering for {name} changed; if intentional, "
        f"regenerate with `python {__file__} --regen`")


def test_lower_once_feeds_both_emitters():
    """The NumPy-steady source and the loop kernel come from one
    lowering: same ArenaProgram object, no re-lowering in between."""
    nk = compile_numpy(fi_fused_flat("double").kernel, "fi_fused_flat",
                       steady=True)
    # the NumPy emitter's source is exactly the IR's own rendering
    assert nk.source == nk.program.render()
    lk = compile_loops(nk.program, tier="python", reference_fn=nk.fn)
    assert lk.program is nk.program
    assert lk.param_names == nk.program.param_names
    assert lk.size_params == nk.program.size_params


def test_available_tiers_always_lists_python():
    tiers = available_tiers()
    assert "python" in tiers


def test_rank3_full_store_program_is_loop_lowerable():
    from repro.acoustics.lift_programs import fi_fused_3d
    nk = compile_numpy(fi_fused_3d("double").kernel, "fi_fused_3d",
                       steady=True)
    assert nk.program.loop_domain() == "grid3"
    assert nk.program.loop_opaque_reasons() == []
    lk = compile_loops(nk.program, tier="python", reference_fn=nk.fn)
    assert lk.program is nk.program


def test_loop_opaque_program_raises_typed_error():
    from repro.lift.codegen.arena import ArenaProgram, RawOp
    prog = ArenaProgram(name="opaque_demo", param_names=["x"],
                        size_params=["N"])
    prog.ops.append(RawOp("out = np.fft.fft(x).real"))
    reasons = prog.loop_opaque_reasons()
    assert reasons
    with pytest.raises(LoopsUnsupported):
        compile_loops(prog, tier="python")


@pytest.mark.parametrize("scheme", ["fi", "fi_mm", "fd_mm"])
def test_python_tier_bit_identical(scheme, monkeypatch):
    """End-to-end: the interpreted loop tier (no compiler involved, so
    this runs on any host) reproduces the steady trajectory exactly."""
    from repro.acoustics import RoomSimulation, SimConfig
    from repro.acoustics.geometry import DomeRoom, Room
    from repro.acoustics.grid import Grid3D
    from repro.acoustics.materials import (default_fd_materials,
                                           default_fi_materials)
    monkeypatch.setenv("REPRO_LOOP_TIER", "python")
    mats = (default_fd_materials(3) if scheme == "fd_mm"
            else default_fi_materials(3))

    def run(backend):
        sim = RoomSimulation(SimConfig(
            room=Room(Grid3D(10, 9, 8), DomeRoom()), scheme=scheme,
            backend=backend, materials=mats))
        sim.add_impulse("center")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            sim.run(12)
        return sim

    ref, loops = run("numpy-steady"), run("numba")
    assert np.array_equal(ref.curr, loops.curr)
    assert ref.curr.dtype == loops.curr.dtype


if __name__ == "__main__":
    if "--regen" in sys.argv:
        for name, text in _artefacts().items():
            (GOLDEN / name).write_text(text)
            print(f"regenerated {GOLDEN / name}")
