"""Tests for the C source builder and pattern constructor validation."""

import pytest

from repro.lift.ast import lam
from repro.lift.codegen.c_ast import CBlock, NameGen
from repro.lift.patterns import (ArrayCons, Concat, Get, Iterate, Map, Pad,
                                 Pad3D, Skip, Slide, Slide3D, TupleCons,
                                 Zip, Zip3D, dump)
from repro.lift.types import Float, Int, TypeError_


class TestCBlock:
    def test_statements_render_in_order(self):
        b = CBlock()
        b.stmt("int a = 1;")
        b.stmt("int b = 2;")
        assert b.render() == "int a = 1;\nint b = 2;"

    def test_indentation(self):
        b = CBlock(indent=2)
        b.stmt("x;")
        assert b.render() == "    x;"

    def test_nested_blocks_auto_close(self):
        b = CBlock()
        inner = b.for_loop("i", "0", "N")
        inner.stmt("work(i);")
        text = b.render()
        assert text.count("{") == text.count("}")
        assert text.index("work(i);") < text.index("}")

    def test_statements_after_open_land_inside(self):
        b = CBlock()
        inner = b.if_block("cond")
        inner.stmt("then();")
        lines = b.render().splitlines()
        assert lines[0] == "if (cond) {"
        assert lines[1].strip() == "then();"
        assert lines[2] == "}"

    def test_for_loop_step(self):
        b = CBlock()
        b.for_loop("i", "0", "N", step="4")
        assert "i += 4" in b.render()

    def test_declare(self):
        b = CBlock()
        b.declare("float", "x", "1.0f")
        b.declare("int", "y")
        out = b.render()
        assert "float x = 1.0f;" in out and "int y;" in out

    def test_comment_and_blank(self):
        b = CBlock()
        b.comment("hello")
        b.blank()
        assert "// hello" in b.render()

    def test_namegen_unique_per_prefix(self):
        n = NameGen()
        assert n.fresh("t") == "t_0"
        assert n.fresh("t") == "t_1"
        assert n.fresh("u") == "u_0"


class TestPatternValidation:
    def test_zip_needs_two(self):
        with pytest.raises(TypeError_):
            Zip(1)
        with pytest.raises(TypeError_):
            Zip3D(1)

    def test_slide_positive(self):
        with pytest.raises(TypeError_):
            Slide(0, 1)
        with pytest.raises(TypeError_):
            Slide(3, 0)
        with pytest.raises(TypeError_):
            Slide3D(0, 1)

    def test_pad_nonnegative(self):
        with pytest.raises(TypeError_):
            Pad(-1, 0, 0.0)
        with pytest.raises(TypeError_):
            Pad3D(-1, 0, 0.0)

    def test_pad_requires_literal(self):
        from repro.lift.ast import Param
        with pytest.raises(TypeError_):
            Pad(1, 1, Param("v", Float))

    def test_get_nonnegative(self):
        with pytest.raises(TypeError_):
            Get(-1)

    def test_tuple_cons_arity(self):
        with pytest.raises(TypeError_):
            TupleCons(0)

    def test_concat_arity(self):
        with pytest.raises(TypeError_):
            Concat(0)

    def test_skip_scalar_only(self):
        from repro.lift.types import ArrayType
        with pytest.raises(TypeError_):
            Skip(ArrayType(Float, 3), 1)

    def test_array_cons_positive(self):
        with pytest.raises(TypeError_):
            ArrayCons(0)

    def test_iterate_nonnegative(self):
        with pytest.raises(TypeError_):
            Iterate(-1, lam(Float, lambda x: x))

    def test_map_requires_function(self):
        with pytest.raises(TypeError_):
            Map("not a function")  # type: ignore[arg-type]

    def test_config_keys_distinguish(self):
        assert Slide(3, 1).config_key() != Slide(3, 2).config_key()
        assert Zip(2).config_key() != Zip(3).config_key()
        f = lam(Float, lambda x: x)
        g = lam(Float, lambda x: x)
        # structurally equal lambdas give equal keys (names differ though)
        assert Map(f).config_key() == Map(f).config_key()

    def test_dump_rejects_non_expr(self):
        with pytest.raises(TypeError_):
            dump("not an expression")  # type: ignore[arg-type]
