"""Golden-source regression tests for the steady-state (arena) emitter.

The ``steady=True`` variant of :func:`compile_numpy` must emit a hot
path with **zero full-grid allocations**: every padded ghost-cell
buffer, gather, ufunc result and ``where`` routes through the
:class:`~repro.lift.codegen.arena.Workspace`.  These tests pin that
property at the source level (no ``np.pad``, no bare allocating ufunc
calls), prove bit-identity against the legacy emitter, and check the
single-precision dtype discipline (no silent float64 upcasts).
"""

import re

import numpy as np
import pytest

from repro.acoustics.lift_programs import (fd_mm_boundary, fi_fused_3d,
                                           fi_fused_flat, fi_mm_boundary,
                                           volume_kernel)
from repro.lift.codegen.arena import ArenaFrozenError, Workspace
from repro.lift.codegen.numpy_backend import compile_numpy

KERNELS = {
    "fi_fused": lambda p: fi_fused_flat(p).kernel,
    "fi_fused_3d": lambda p: fi_fused_3d(p).kernel,
    "volume": lambda p: volume_kernel(p).kernel,
    "fi_mm": lambda p: fi_mm_boundary(p).kernel,
    "fd_mm": lambda p: fd_mm_boundary(p, 3).kernel,
}

#: a direct call to any of these allocates a fresh array; in steady
#: source they may only appear as *function objects* handed to
#: ``_ws.ufunc`` (i.e. ``np.add,`` — never ``np.add(``)
_ALLOCATING_CALL = re.compile(
    r"np\.(add|subtract|multiply|true_divide|divide|minimum|maximum|"
    r"greater|greater_equal|less|less_equal|equal|not_equal|where|pad|"
    r"empty|zeros|ones|concatenate)\s*\(")


@pytest.mark.parametrize("precision", ["single", "double"])
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_steady_source_has_no_full_grid_allocations(name, precision):
    src = compile_numpy(KERNELS[name](precision), name, steady=True).source
    assert "np.pad(" not in src, src          # ghost cells live in the arena
    m = _ALLOCATING_CALL.search(src)
    assert m is None, f"bare allocating call {m.group(0)!r} in:\n{src}"


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_legacy_emission_is_unchanged_default(name):
    # the legacy emitter stays the default and knows nothing of the arena
    src = compile_numpy(KERNELS[name]("double"), name).source
    assert "_ws" not in src


def test_cse_emits_each_subexpression_once():
    src = compile_numpy(fi_fused_flat("single").kernel, "fi",
                        steady=True).source
    rhs = [line.split(" = ", 1)[1]
           for line in src.splitlines() if " = _ws." in line]
    assert len(rhs) == len(set(rhs)), (
        "duplicated arena operation survived CSE:\n" + src)


class TestBitIdentity:
    """steady=True output equals the legacy emitter's, bit for bit."""

    def _problem(self, precision):
        from repro.acoustics.geometry import DomeRoom, Room
        from repro.acoustics.grid import Grid3D
        from repro.acoustics.topology import build_topology
        g = Grid3D(12, 10, 9)
        topo = build_topology(Room(g, DomeRoom()), num_materials=3)
        rng = np.random.default_rng(7)
        dt = np.float32 if precision == "single" else np.float64
        N, guard = g.num_points, g.nx * g.ny

        def state():
            return rng.standard_normal(N + guard).astype(dt)

        return g, topo, N, guard, state, dt

    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_fused_kernel(self, precision):
        g, topo, N, guard, state, dt = self._problem(precision)
        prev, curr = state(), state()
        nbrs = np.concatenate([topo.nbrs, np.zeros(guard, np.int32)])
        lam = dt(g.courant)
        beta = dt(0.35)
        kernel = fi_fused_flat(precision).kernel
        legacy = compile_numpy(kernel, "f")
        steady = compile_numpy(kernel, "f", steady=True)
        out_l = np.zeros(N + guard, dt)
        legacy.fn(prev, curr, nbrs, lam, beta, g.nx, g.nx * g.ny,
                  N=N, NP=N + guard, out=out_l)
        ws = Workspace("test")
        for _ in range(3):                     # warm, then hot path
            out_s = np.zeros(N + guard, dt)
            steady.fn(prev, curr, nbrs, lam, beta, g.nx, g.nx * g.ny,
                      N=N, NP=N + guard, out=out_s, _ws=ws)
            np.testing.assert_array_equal(out_s, out_l)
        assert out_s.dtype == out_l.dtype == dt

    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_boundary_kernel(self, precision):
        g, topo, N, guard, state, dt = self._problem(precision)
        from repro.acoustics.materials import (MaterialTable,
                                               default_fi_materials)
        table = MaterialTable.from_fi(default_fi_materials(3))
        beta = table.beta.astype(dt)
        prev = state()
        kernel = fi_mm_boundary(precision).kernel
        legacy = compile_numpy(kernel, "b")
        steady = compile_numpy(kernel, "b", steady=True)
        sizes = dict(N=N, K=topo.num_boundary_points,
                     M=table.num_materials)
        base = state()
        buf_l = base.copy()
        legacy.fn(topo.boundary_indices, topo.material, topo.nbrs, beta,
                  buf_l, prev, dt(g.courant), **sizes)
        ws = Workspace("test")
        for _ in range(3):
            buf_s = base.copy()
            steady.fn(topo.boundary_indices, topo.material, topo.nbrs,
                      beta, buf_s, prev, dt(g.courant), **sizes, _ws=ws)
            np.testing.assert_array_equal(buf_s, buf_l)


class TestDtypePreservation:
    """Single-precision programs must never upcast to float64: OpenCL
    evaluates mixed int/float arithmetic at float width, so the arena
    slots of a float32 kernel are float32 (or integer/bool), never f64."""

    def _run_single(self):
        from repro.acoustics.geometry import DomeRoom, Room
        from repro.acoustics.grid import Grid3D
        from repro.acoustics.topology import build_topology
        g = Grid3D(12, 10, 9)
        topo = build_topology(Room(g, DomeRoom()), num_materials=3)
        N, guard = g.num_points, g.nx * g.ny
        rng = np.random.default_rng(3)
        prev = rng.standard_normal(N + guard).astype(np.float32)
        curr = rng.standard_normal(N + guard).astype(np.float32)
        nbrs = np.concatenate([topo.nbrs, np.zeros(guard, np.int32)])
        nk = compile_numpy(fi_fused_flat("single").kernel, "f", steady=True)
        ws = Workspace("dtype")
        out = np.zeros(N + guard, np.float32)
        for _ in range(2):
            nk.fn(prev, curr, nbrs, np.float32(g.courant), np.float32(0.3),
                  g.nx, g.nx * g.ny, N=N, NP=N + guard, out=out, _ws=ws)
        return out, ws

    def test_no_float64_slot(self):
        out, ws = self._run_single()
        assert out.dtype == np.float32
        for name, buf in ws._slots.items():
            assert buf.dtype != np.float64, (
                f"slot {name!r} silently upcast to float64")
        for name, (_key, val) in ws._consts.items():
            if isinstance(val, np.ndarray):
                assert val.dtype != np.float64, (
                    f"const {name!r} silently upcast to float64")

    def test_float_arithmetic_actually_ran_in_f32(self):
        # the all-f32 result differs from an f64-evaluated one, so equal
        # results would mean the chain secretly ran in double
        out, _ = self._run_single()
        assert out.dtype == np.float32


class TestZeroAllocation:
    def test_frozen_workspace_keeps_stepping(self):
        """After warm-up a steady kernel never allocates: freeze the
        arena and keep calling — the allocation-tracking acceptance
        hook."""
        from repro.acoustics.geometry import DomeRoom, Room
        from repro.acoustics.grid import Grid3D
        from repro.acoustics.topology import build_topology
        g = Grid3D(12, 10, 9)
        topo = build_topology(Room(g, DomeRoom()), num_materials=3)
        N, guard = g.num_points, g.nx * g.ny
        rng = np.random.default_rng(4)
        prev = rng.standard_normal(N + guard)
        curr = rng.standard_normal(N + guard)
        nbrs = np.concatenate([topo.nbrs, np.zeros(guard, np.int32)])
        nk = compile_numpy(fi_fused_flat("double").kernel, "f", steady=True)
        ws = Workspace("freeze")
        out = np.zeros(N + guard)
        args = (prev, curr, nbrs, g.courant, 0.3, g.nx, g.nx * g.ny)
        nk.fn(*args, N=N, NP=N + guard, out=out, _ws=ws)   # warm-up
        ws.freeze()
        for _ in range(5):                                  # hot path
            nk.fn(*args, N=N, NP=N + guard, out=out, _ws=ws)
        assert ws.hits > 0

    def test_cold_frozen_workspace_raises(self):
        nk = compile_numpy(fi_fused_flat("double").kernel, "f", steady=True)
        ws = Workspace("cold")
        ws.freeze()
        with pytest.raises(ArenaFrozenError):
            nk.fn(np.zeros(16), np.zeros(16), np.zeros(16, np.int32),
                  0.5, 0.3, 2, 4, N=12, NP=16, out=np.zeros(16), _ws=ws)
