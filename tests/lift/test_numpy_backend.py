"""Tests for the NumPy backend (repro.lift.codegen.numpy_backend).

Parity: for every supported program shape, the generated-and-exec'd NumPy
function must agree with the reference interpreter.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lift.arith import Var
from repro.lift.ast import BinOp, FunCall, Lambda, Param, Select, lam, lit
from repro.lift.codegen.numpy_backend import (NumpyCodegenError,
                                              compile_numpy)
from repro.lift.interp import Interp
from repro.lift.patterns import (ArrayAccess, ArrayCons, Concat, Get, Id,
                                 Iota, Map, Pad, Reduce, Skip, Slide,
                                 Transpose, WriteTo, Zip)
from repro.lift.types import ArrayType, Double, Float, Int, TupleType

N = Var("N")

floats = st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False),
                  min_size=1, max_size=16)


class TestSimplePrograms:
    @given(floats)
    @settings(max_examples=25)
    def test_map_parity_with_interp(self, xs):
        A = Param("A", ArrayType(Double, N))
        prog = Lambda([A], FunCall(Map(lam(Double, lambda x:
                                           BinOp("*", x, x))), A))
        a = np.asarray(xs)
        ref = np.asarray(Interp(sizes={"N": len(xs)}).run(prog, a))
        nk = compile_numpy(prog, "sq")
        out = np.zeros_like(a)
        nk.fn(a, N=len(xs), out=out)
        np.testing.assert_allclose(out, ref, rtol=1e-12)

    @given(floats)
    @settings(max_examples=25)
    def test_zip_parity(self, xs):
        A = Param("A", ArrayType(Double, N))
        B = Param("B", ArrayType(Double, N))
        p = Param("p", TupleType(Double, Double))
        prog = Lambda([A, B], FunCall(
            Map(Lambda([p], BinOp("-", FunCall(Get(0), p),
                                  FunCall(Get(1), p)))),
            FunCall(Zip(2), A, B)))
        a = np.asarray(xs)
        ref = np.asarray(Interp(sizes={"N": len(xs)}).run(prog, a, 3 * a))
        nk = compile_numpy(prog, "sub")
        out = np.zeros_like(a)
        nk.fn(a, 3 * a, N=len(xs), out=out)
        np.testing.assert_allclose(out, ref, rtol=1e-12)

    def test_select_becomes_where(self):
        A = Param("A", ArrayType(Double, N))
        x = Param("x", Double)
        body = Select(BinOp(">", x, lit(0.0, Double)), x, lit(0.0, Double))
        prog = Lambda([A], FunCall(Map(Lambda([x], body)), A))
        nk = compile_numpy(prog, "relu")
        assert "np.where" in nk.source
        out = np.zeros(4)
        nk.fn(np.array([-1.0, 2.0, -3.0, 4.0]), N=4, out=out)
        np.testing.assert_array_equal(out, [0, 2, 0, 4])

    def test_min_max_mapping(self):
        A = Param("A", ArrayType(Double, N))
        x = Param("x", Double)
        prog = Lambda([A], FunCall(Map(Lambda([x], BinOp(
            "min", BinOp("max", x, lit(0.0, Double)), lit(1.0, Double)))), A))
        nk = compile_numpy(prog, "clamp")
        assert "np.minimum" in nk.source and "np.maximum" in nk.source
        out = np.zeros(3)
        nk.fn(np.array([-5.0, 0.5, 9.0]), N=3, out=out)
        np.testing.assert_array_equal(out, [0, 0.5, 1])

    @given(floats)
    @settings(max_examples=25)
    def test_stencil_parity(self, xs):
        A = Param("A", ArrayType(Double, N))
        add = lam([Double, Double], lambda a, b: BinOp("+", a, b))
        prog = Lambda([A], FunCall(Map(Reduce(add, 0.0)),
                                   FunCall(Slide(3, 1),
                                           FunCall(Pad(1, 1, 0.0), A))))
        a = np.asarray(xs)
        ref = np.asarray(Interp(sizes={"N": len(xs)}).run(prog, a))
        nk = compile_numpy(prog, "st")
        out = np.zeros_like(a)
        nk.fn(a, N=len(xs), out=out)
        np.testing.assert_allclose(out, ref, rtol=1e-12)

    def test_pad_materialised_with_np_pad(self):
        A = Param("A", ArrayType(Double, N))
        add = lam([Double, Double], lambda a, b: BinOp("+", a, b))
        prog = Lambda([A], FunCall(Map(Reduce(add, 0.0)),
                                   FunCall(Slide(3, 1),
                                           FunCall(Pad(1, 1, 0.0), A))))
        nk = compile_numpy(prog, "st")
        assert "np.pad" in nk.source


class TestInPlace:
    def _prog(self):
        M, K = Var("M"), Var("K")
        inp = Param("input", ArrayType(Double, M))
        idxs = Param("indices", ArrayType(Int, K))
        i = Param("i", Int)
        newv = BinOp("*", FunCall(ArrayAccess(), inp, i), 2.0)
        row = FunCall(Concat(3), FunCall(Skip(Double, i.arith)),
                      FunCall(Map(Id()), FunCall(ArrayCons(1), newv)),
                      FunCall(Skip(Double, M - 1 - i.arith)))
        return Lambda([inp, idxs],
                      FunCall(WriteTo(), inp,
                              FunCall(Map(Lambda([i], row)), idxs)))

    def test_scatter_in_place(self):
        nk = compile_numpy(self._prog(), "inplace")
        buf = np.array([1.0, 2.0, 3.0, 4.0])
        ret = nk.fn(buf, np.array([1, 3]), M=4, K=2)
        np.testing.assert_array_equal(buf, [1, 4, 3, 8])
        assert ret is buf

    def test_no_out_in_signature(self):
        nk = compile_numpy(self._prog(), "inplace")
        assert not nk.returns_out
        assert "def inplace(input, indices, K, M):" in nk.source

    @given(st.integers(2, 20), st.data())
    @settings(max_examples=25)
    def test_scatter_parity_with_interp(self, m, data):
        idx = data.draw(st.lists(st.integers(0, m - 1), min_size=1,
                                 max_size=m, unique=True))
        prog = self._prog()
        buf1 = np.arange(1.0, m + 1.0)
        buf2 = buf1.copy()
        Interp(sizes={"M": m, "K": len(idx)}).run(
            prog, buf1, np.asarray(idx))
        nk = compile_numpy(prog, "inplace")
        nk.fn(buf2, np.asarray(idx), M=m, K=len(idx))
        np.testing.assert_array_equal(buf1, buf2)


class TestGeneratedSource:
    def test_source_is_printable_python(self):
        A = Param("A", ArrayType(Double, N))
        prog = Lambda([A], FunCall(Map(lam(Double, lambda x: x)), A))
        nk = compile_numpy(prog, "identity_k")
        compile(nk.source, "<test>", "exec")  # must be valid Python

    def test_gid_gather_pipeline(self):
        A = Param("A", ArrayType(Double, N))
        prog = Lambda([A], FunCall(Map(lam(Double, lambda x:
                                           BinOp("+", x, 1.0))), A))
        nk = compile_numpy(prog, "k")
        assert "_gid = np.arange(N)" in nk.source
        assert "out[_gid]" in nk.source

    def test_unsupported_raises(self):
        from repro.lift.types import array
        G = Param("G", array(Double, 3, 4))
        prog = Lambda([G], FunCall(Transpose(), G))
        with pytest.raises(NumpyCodegenError):
            compile_numpy(prog, "bad")
