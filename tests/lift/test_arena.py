"""Unit tests for the workspace arena (steady-state buffer slots).

Every operation has the same contract: the first call (miss) performs
the exact legacy allocating operation and keeps the result as the slot
buffer; every later call (hit) re-executes the operation *into* that
buffer and must be elementwise identical to the allocating form.
"""

import numpy as np
import pytest

from repro.lift.codegen.arena import (ArenaFrozenError, Workspace,
                                      arena_stats, reset_arena_stats)


@pytest.fixture()
def ws():
    return Workspace("test")


class TestUfunc:
    def test_miss_then_hit_reuses_buffer(self, ws):
        a = np.arange(5.0)
        b = np.ones(5)
        first = ws.ufunc("t", np.add, a, b)
        second = ws.ufunc("t", np.add, a, 2 * b)
        assert second is first          # same storage, rewritten in place
        np.testing.assert_array_equal(second, a + 2)
        assert (ws.hits, ws.misses) == (1, 1)

    def test_miss_keeps_natural_dtype(self, ws):
        # int32 + int64 promotes to int64; the slot must adopt NumPy's
        # own result dtype, never re-derive promotion rules
        r = ws.ufunc("t", np.add, np.arange(3, dtype=np.int32),
                     np.arange(3, dtype=np.int64))
        assert r.dtype == np.int64
        assert ws.ufunc("t", np.add, np.arange(3, dtype=np.int32),
                        np.arange(3, dtype=np.int64)).dtype == np.int64

    def test_scalar_result_not_cached(self, ws):
        assert ws.ufunc("s", np.add, 1.0, 2.0) == 3.0
        assert "s" not in ws._slots


class TestShift:
    def test_in_range_is_view(self, ws):
        a = np.arange(10.0)
        v = ws.shift("t", a, 4, 2)
        assert v.base is a              # zero-copy
        np.testing.assert_array_equal(v, a[2:6])

    def test_copy_true_preserves_read_before_write(self, ws):
        a = np.arange(6.0)
        c = ws.shift("t", a, 4, 1, copy=True)
        a[:] = 0
        np.testing.assert_array_equal(c, [1, 2, 3, 4])
        c2 = ws.shift("t", a, 4, 1, copy=True)
        assert c2 is c
        np.testing.assert_array_equal(c2, np.zeros(4))

    def test_negative_offset_matches_fancy_indexing(self, ws):
        a = np.arange(10.0)
        n, off = 6, -2
        idx = np.arange(n) + off        # fancy indexing wraps negatives
        got = ws.shift("t", a, n, off)
        np.testing.assert_array_equal(got, a[idx])
        # hit path refreshes the same buffer
        a += 100
        got2 = ws.shift("t", a, n, off)
        assert got2 is got
        np.testing.assert_array_equal(got2, a[idx])

    def test_out_of_range_raises(self, ws):
        with pytest.raises(IndexError):
            ws.shift("t", np.arange(4.0), 4, 3)


class TestWhereTakeCast:
    def test_where_matches_numpy(self, ws):
        rng = np.random.default_rng(0)
        c = rng.random(8) > 0.5
        t, f = rng.random(8), rng.random(8)
        np.testing.assert_array_equal(ws.where("w", c, t, f),
                                      np.where(c, t, f))
        c2 = ~c
        np.testing.assert_array_equal(ws.where("w", c2, t, f),
                                      np.where(c2, t, f))
        assert ws.hits == 1

    def test_take_matches_fancy_indexing(self, ws):
        a = np.arange(10.0) * 1.5
        idx = np.array([3, 0, 9, 3], dtype=np.int32)
        np.testing.assert_array_equal(ws.take("g", a, idx), a[idx])
        a *= -1
        np.testing.assert_array_equal(ws.take("g", a, idx), a[idx])

    def test_cast_always_copies(self, ws):
        a = np.arange(4, dtype=np.int32)
        c = ws.cast("c", a, np.float32)
        assert c.dtype == np.float32
        a[:] = 0
        np.testing.assert_array_equal(c, [0, 1, 2, 3])
        c2 = ws.cast("c", a, np.float32)
        assert c2 is c
        np.testing.assert_array_equal(c2, np.zeros(4))


class TestPad:
    def test_halo_written_once_then_persists(self, ws):
        a = np.arange(4.0)
        p = ws.pad("p", a, 1, 2, 0.0)
        np.testing.assert_array_equal(p, np.pad(a, (1, 2)))
        # hit: only the interior is refreshed, the halo persists
        a2 = a + 10
        p2 = ws.pad("p", a2, 1, 2, 0.0)
        assert p2 is p
        np.testing.assert_array_equal(p2, np.pad(a2, (1, 2)))
        assert ws.hits == 1

    def test_pad3_symmetric_halo(self, ws):
        a = np.arange(8.0).reshape(2, 2, 2)
        p = ws.pad3("p", a, 1, 0.0)
        np.testing.assert_array_equal(p, np.pad(a, 1))
        p2 = ws.pad3("p", a * 3, 1, 0.0)
        assert p2 is p
        np.testing.assert_array_equal(p2, np.pad(a * 3, 1))


class TestConst:
    def test_recomputes_only_when_key_changes(self, ws):
        calls = []
        def make():
            calls.append(1)
            return np.arange(4)
        ws.const("i", (4,), make)
        ws.const("i", (4,), make)
        assert len(calls) == 1
        ws.const("i", (5,), make)       # scalar/size argument changed
        assert len(calls) == 2


class TestFreeze:
    def test_frozen_workspace_rejects_new_slots(self, ws):
        a = np.arange(4.0)
        ws.ufunc("t", np.add, a, a)
        ws.freeze()
        # existing slots keep working — this is the zero-allocation proof
        ws.ufunc("t", np.add, a, a)
        with pytest.raises(ArenaFrozenError):
            ws.ufunc("new", np.add, a, a)
        ws.thaw()
        ws.ufunc("new", np.add, a, a)   # no raise after thaw


class TestStats:
    def test_process_wide_accounting(self):
        reset_arena_stats()
        ws = Workspace("acct")
        a = np.arange(16.0)
        ws.ufunc("t", np.add, a, a)
        ws.ufunc("t", np.add, a, a)
        s = arena_stats()
        assert s["hits"] >= 1 and s["misses"] >= 1
        assert s["nbytes"] >= a.nbytes
        assert s["workspaces"] >= 1
        assert ws.stats()["slots"] == 1
