"""Golden-file snapshots of generated code.

These pin the exact text of the flagship kernels (paper Listings 3/4
counterparts) so unintended code-generation changes are caught.  To
refresh after an *intentional* change:

    python tests/lift/test_golden_snapshots.py --regen
"""

import pathlib
import sys

import pytest

from repro.acoustics.lift_programs import fd_mm_boundary, fi_mm_boundary
from repro.lift.codegen.numpy_backend import compile_numpy
from repro.lift.codegen.opencl import compile_kernel

GOLDEN = pathlib.Path(__file__).parent / "golden"


def _artefacts():
    return {
        "fi_mm_boundary_single.cl":
            compile_kernel(fi_mm_boundary("single").kernel,
                           "fi_mm_boundary").source + "\n",
        "fd_mm_boundary_double_mb3.cl":
            compile_kernel(fd_mm_boundary("double", 3).kernel,
                           "fd_mm_boundary").source + "\n",
        "fi_mm_boundary_double.py.txt":
            compile_numpy(fi_mm_boundary("double").kernel,
                          "fi_mm_boundary").source + "\n",
    }


@pytest.mark.parametrize("name", sorted(_artefacts()))
def test_generated_code_matches_snapshot(name):
    expected = (GOLDEN / name).read_text()
    actual = _artefacts()[name]
    assert actual == expected, (
        f"generated code for {name} changed; if intentional, regenerate "
        f"with `python {__file__} --regen`")


def test_snapshots_are_deterministic():
    assert _artefacts() == _artefacts()


if __name__ == "__main__":
    if "--regen" in sys.argv:
        for name, text in _artefacts().items():
            (GOLDEN / name).write_text(text)
            print(f"regenerated {GOLDEN / name}")
