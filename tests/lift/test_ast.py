"""Tests for the expression AST and builders (repro.lift.ast)."""

import pytest

from repro.lift.arith import Var
from repro.lift.ast import (BinOp, FunCall, Lambda, Literal, Param, Select,
                            UnaryOp, UserFun, as_expr, lam, lit, pre_order,
                            structurally_equal)
from repro.lift.patterns import Get, Map, Zip, dump
from repro.lift.types import ArrayType, Double, Float, Int, TupleType, TypeError_


class TestNodes:
    def test_param_arith(self):
        p = Param("idx", Int)
        assert p.arith == Var("idx")

    def test_literal_requires_scalar(self):
        with pytest.raises(TypeError_):
            Literal(1.0, ArrayType(Float, 3))  # type: ignore[arg-type]

    def test_lit_builder(self):
        l = lit(2.0, Double)
        assert l.value == 2.0 and l.type is Double

    def test_as_expr_int(self):
        e = as_expr(3)
        assert isinstance(e, Literal) and e.type is Int

    def test_as_expr_float(self):
        e = as_expr(1.5)
        assert isinstance(e, Literal) and e.type is Float

    def test_as_expr_rejects_bool(self):
        with pytest.raises(TypeError_):
            as_expr(True)

    def test_as_expr_rejects_other(self):
        with pytest.raises(TypeError_):
            as_expr("hello")

    def test_binop_unknown_op(self):
        with pytest.raises(TypeError_):
            BinOp("**", as_expr(1), as_expr(2))

    def test_unary_unknown_op(self):
        with pytest.raises(TypeError_):
            UnaryOp("sin", as_expr(1.0))

    def test_funcall_requires_fundecl(self):
        with pytest.raises(TypeError_):
            FunCall("not a function", as_expr(1))  # type: ignore[arg-type]

    def test_binop_flops(self):
        assert BinOp("+", as_expr(1.0), as_expr(2.0)).flops == 1
        assert BinOp("<", as_expr(1.0), as_expr(2.0)).flops == 0
        assert BinOp("<", as_expr(1.0), as_expr(2.0)).is_comparison


class TestBuilders:
    def test_lam_single_type(self):
        f = lam(Float, lambda x: BinOp("*", x, x))
        assert len(f.params) == 1
        assert f.params[0].declared_type is Float

    def test_lam_multi(self):
        f = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        assert len(f.params) == 2

    def test_lam_names(self):
        f = lam([Int], lambda i: i, names=["idx"])
        assert f.params[0].name == "idx"

    def test_lam_fresh_names_unique(self):
        f = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        g = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        assert {p.name for p in f.params} != {p.name for p in g.params}

    def test_lshift_application(self):
        m = Map(lam(Float, lambda x: x))
        p = Param("A", ArrayType(Float, 4))
        call = m << p
        assert isinstance(call, FunCall)
        assert call.args == (p,)

    def test_lshift_tuple(self):
        z = Zip(2)
        a = Param("A", ArrayType(Float, 4))
        b = Param("B", ArrayType(Float, 4))
        call = z << (a, b)
        assert len(call.args) == 2


class TestTraversal:
    def test_pre_order_counts(self):
        f = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        a = Param("A", ArrayType(Float, 4))
        call = FunCall(Map(f), a)
        nodes = list(pre_order(call))
        kinds = [type(n).__name__ for n in nodes]
        assert kinds[0] == "FunCall"
        assert "Lambda" in kinds       # Map's nested lambda is traversed
        assert "Param" in kinds

    def test_pre_order_parent_first(self):
        b = BinOp("+", as_expr(1.0), as_expr(2.0))
        nodes = list(pre_order(b))
        assert nodes[0] is b


class TestStructuralEquality:
    def _prog(self):
        a = Param("A", ArrayType(Float, Var("N")))
        p = Param("p", Float)
        return Lambda([a], FunCall(Map(Lambda([p], BinOp("*", p, 2.0))), a))

    def test_identical_structures(self):
        assert structurally_equal(self._prog(), self._prog())

    def test_dump_equality(self):
        assert dump(self._prog()) == dump(self._prog())

    def test_different_literal(self):
        a = Param("A", ArrayType(Float, Var("N")))
        p = Param("p", Float)
        other = Lambda([a], FunCall(Map(Lambda([p], BinOp("*", p, 3.0))), a))
        assert not structurally_equal(self._prog(), other)

    def test_different_op(self):
        a = Param("A", ArrayType(Float, Var("N")))
        p = Param("p", Float)
        other = Lambda([a], FunCall(Map(Lambda([p], BinOp("+", p, 2.0))), a))
        assert not structurally_equal(self._prog(), other)

    def test_param_name_matters(self):
        assert not structurally_equal(Param("x", Float), Param("y", Float))

    def test_select_equality(self):
        s1 = Select(BinOp("<", as_expr(1), as_expr(2)), as_expr(1.0), as_expr(0.0))
        s2 = Select(BinOp("<", as_expr(1), as_expr(2)), as_expr(1.0), as_expr(0.0))
        assert structurally_equal(s1, s2)

    def test_userfun_by_name(self):
        uf1 = UserFun("sq", ("x",), "return x * x;", (Float,), Float,
                      lambda x: x * x)
        uf2 = UserFun("sq", ("x",), "return x * x;", (Float,), Float,
                      lambda x: x * x)
        a = Param("a", Float)
        assert structurally_equal(FunCall(uf1, a), FunCall(uf2, a))


class TestUserFun:
    def test_arity_check_at_construction(self):
        with pytest.raises(TypeError_):
            UserFun("bad", ("x", "y"), "return x;", (Float,), Float,
                    lambda x: x)

    def test_check_type(self):
        uf = UserFun("add", ("a", "b"), "return a + b;", (Float, Float),
                     Float, lambda a, b: a + b)
        assert uf.check_type([Float, Float]) is Float

    def test_check_type_wrong_arity(self):
        uf = UserFun("id", ("x",), "return x;", (Float,), Float, lambda x: x)
        with pytest.raises(TypeError_):
            uf.check_type([Float, Float])

    def test_check_type_wrong_type(self):
        uf = UserFun("id", ("x",), "return x;", (Float,), Float, lambda x: x)
        with pytest.raises(TypeError_):
            uf.check_type([Int])
