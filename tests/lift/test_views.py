"""Tests for the view system (repro.lift.views)."""

import pytest

from repro.lift.types import Double, Float
from repro.lift.views import (InView, OutElement, OutMem, OutMem3D,
                              OutOffset, ViewConstant, ViewError, ViewIota,
                              ViewJoin, ViewMem, ViewMem3D, ViewPad,
                              ViewPad3D, ViewSlide, ViewSlide3D, ViewSplit,
                              ViewTuple, ViewWindow, ViewZip, ViewZip3D,
                              in_view_to_out, paren)


class TestParen:
    def test_atomic_identifier(self):
        assert paren("gid") == "gid"

    def test_number(self):
        assert paren("42") == "42"

    def test_compound(self):
        assert paren("a+b") == "(a+b)"

    def test_already_wrapped(self):
        assert paren("(a+b)") == "(a+b)"

    def test_two_groups_not_merged(self):
        assert paren("(a)+(b)") == "((a)+(b))"


class TestInputViews:
    def test_mem(self):
        assert ViewMem("A", Float).access("i") == "A[i]"

    def test_iota_is_free(self):
        assert ViewIota().access("gid") == "gid"

    def test_constant(self):
        assert ViewConstant("7.0f").access("anything") == "7.0f"

    def test_zip_produces_tuple(self):
        v = ViewZip([ViewMem("A", Float), ViewMem("B", Float)])
        t = v.access("i")
        assert isinstance(t, ViewTuple)
        assert t.get(0) == "A[i]"
        assert t.get(1) == "B[i]"

    def test_tuple_out_of_range(self):
        with pytest.raises(ViewError):
            ViewTuple(["x"]).get(3)

    def test_slide_window_collapse(self):
        v = ViewSlide(ViewMem("A", Float), 3, 1)
        w = v.access("gid")
        assert isinstance(w, ViewWindow)
        assert w.access("2") == "A[(gid*1)+2]"

    def test_slide_step(self):
        v = ViewSlide(ViewMem("A", Float), 3, 2)
        assert v.access("g").access("0") == "A[(g*2)+0]"

    def test_pad_guard(self):
        v = ViewPad(ViewMem("A", Float), 1, "N", "0.0f")
        s = v.access("j")
        assert "?" in s and "0.0f" in s and "A[(j-1)]" in s

    def test_pad_zero_left(self):
        v = ViewPad(ViewMem("A", Float), 0, "N", "0.0f")
        s = v.access("j")
        assert "A[j]" in s

    def test_split(self):
        v = ViewSplit(ViewMem("A", Float), "4")
        assert v.access("r").access("c") == "A[(r*4)+c]"

    def test_join(self):
        inner = ViewSplit(ViewMem("A", Float), "4")
        v = ViewJoin(inner, "4")
        assert v.access("i") == "A[((i/4)*4)+(i%4)]"

    def test_mem3d_x_fastest(self):
        v = ViewMem3D("G", Float, "NZ", "NY", "NX")
        assert v.access3("z", "y", "x") == "G[(z*NY+y)*NX+x]"

    def test_slide3d_window(self):
        v = ViewSlide3D(ViewMem3D("G", Float, "NZ", "NY", "NX"), 3, 1)
        w = v.access3("z", "y", "x")
        s = w.access3("1", "1", "2")
        assert s == "G[((z+1)*NY+(y+1))*NX+(x+2)]"

    def test_pad3d_guard(self):
        v = ViewPad3D(ViewMem3D("G", Float, "a", "b", "c"), 1,
                      "a", "b", "c", "0.0")
        s = v.access3("z", "y", "x")
        assert "?" in s and "&&" in s

    def test_zip3d(self):
        v = ViewZip3D([ViewMem3D("A", Float, "n", "n", "n"),
                       ViewMem3D("B", Float, "n", "n", "n")])
        t = v.access3("i", "j", "k")
        assert t.get(0) == "A[(i*n+j)*n+k]"

    def test_base_view_cannot_be_indexed(self):
        with pytest.raises(ViewError):
            InView().access("i")


class TestOutputViews:
    def test_out_mem(self):
        o = OutMem("out", Float)
        assert o.store("i", "v") == "out[i] = v;"
        assert o.location("i") == "out[i]"

    def test_out_offset(self):
        o = OutOffset(OutMem("out", Float), "idx")
        assert o.store("0", "v") == "out[idx+0] = v;"

    def test_nested_offsets(self):
        o = OutOffset(OutOffset(OutMem("out", Float), "a"), "b")
        assert "a" in o.store("0", "v") and "b" in o.store("0", "v")

    def test_out_element(self):
        o = OutElement("next", "idx_0", Double)
        assert o.store_scalar("v") == "next[idx_0] = v;"

    def test_out_mem3d(self):
        o = OutMem3D("out", Float, "NZ", "NY", "NX")
        assert o.store3("z", "y", "x", "v") == "out[(z*NY+y)*NX+x] = v;"

    def test_in_view_to_out_mem(self):
        o = in_view_to_out(ViewMem("next", Double))
        assert isinstance(o, OutMem)
        assert o.name == "next"

    def test_in_view_to_out_mem3d(self):
        o = in_view_to_out(ViewMem3D("g", Float, "a", "b", "c"))
        assert isinstance(o, OutMem3D)

    def test_in_view_to_out_rejects_others(self):
        with pytest.raises(ViewError):
            in_view_to_out(ViewIota())
