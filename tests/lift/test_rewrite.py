"""Tests for rewrite rules and lowering (repro.lift.rewrite).

The essential invariant: every rule is semantics-preserving, verified by
running the program through the reference interpreter before and after.
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lift.arith import Var
from repro.lift.ast import (BinOp, FunCall, Lambda, Param, lam,
                            structurally_equal)
from repro.lift.interp import Interp
from repro.lift.patterns import (Join, Map, MapGlb, MapLcl, MapSeq, MapWrg,
                                 Reduce, ReduceSeq, Slide, Split, Zip, dump)
from repro.lift.rewrite import (MAP_FUSION, MAP_TO_MAPGLB, MAP_TO_MAPSEQ,
                                REDUCE_TO_REDUCESEQ, RewriteError, Rule,
                                beta_reduce, clone, lower_simple,
                                map_to_wrg_lcl, rewrite_everywhere,
                                rewrite_first, split_join)
from repro.lift.types import ArrayType, Float

N = Var("N")

floats = st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False,
                            width=32), min_size=1, max_size=12)


def square_map_prog():
    A = Param("A", ArrayType(Float, N))
    return Lambda([A], FunCall(Map(lam(Float, lambda x: BinOp("*", x, x))), A))


def double_map_prog():
    """map(+1) o map(*2)"""
    A = Param("A", ArrayType(Float, N))
    inner = FunCall(Map(lam(Float, lambda x: BinOp("*", x, 2.0))), A)
    return Lambda([A], FunCall(Map(lam(Float, lambda x: BinOp("+", x, 1.0))),
                               inner))


def run(prog, xs):
    return np.asarray(Interp(sizes={"N": len(xs)}).run(prog, np.asarray(xs)))


class TestClone:
    def test_clone_is_structurally_equal(self):
        p = square_map_prog()
        assert structurally_equal(p, clone(p))

    def test_clone_is_fresh_objects(self):
        p = square_map_prog()
        c = clone(p)
        assert c is not p and c.body is not p.body

    def test_substitution(self):
        x = Param("x", Float)
        e = BinOp("+", x, x)
        e2 = clone(e, {"x": BinOp("*", Param("y", Float), 2.0)})
        out = dump(e2)
        assert "y" in out and "x" not in out

    def test_capture_correctness(self):
        """Substituting under a binder of the same name must not capture."""
        x_outer = Param("x", Float)
        inner_lam = lam(Float, lambda v: v, names=["x"])  # binds its own x
        A = Param("A", ArrayType(Float, N))
        e = FunCall(Map(inner_lam), A)
        c = clone(e, {"x": x_outer})
        # the inner lambda still refers to its own parameter
        assert structurally_equal(c, e)

    def test_beta_reduce(self):
        f = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        out = beta_reduce(f, [Param("u", Float), Param("v", Float)])
        assert dump(out) == "(P:u+P:v)"

    def test_beta_reduce_arity(self):
        f = lam(Float, lambda x: x)
        with pytest.raises(RewriteError):
            beta_reduce(f, [])


class TestRulesPreserveSemantics:
    @given(floats)
    def test_map_fusion(self, xs):
        p = double_map_prog()
        fused = rewrite_first(p.body, MAP_FUSION)
        p2 = Lambda(list(p.params), fused)
        np.testing.assert_allclose(run(p, xs), run(p2, xs), rtol=1e-6)

    def test_map_fusion_removes_intermediate(self):
        p = double_map_prog()
        fused = rewrite_first(p.body, MAP_FUSION)
        # exactly one Map remains
        assert dump(fused).count("'Map'") < dump(p.body).count("'Map'")

    @given(floats)
    def test_map_to_mapglb(self, xs):
        p = square_map_prog()
        p2 = Lambda(list(p.params), rewrite_first(p.body, MAP_TO_MAPGLB))
        np.testing.assert_allclose(run(p, xs), run(p2, xs), rtol=1e-6)

    @given(floats)
    def test_map_to_mapseq(self, xs):
        p = square_map_prog()
        p2 = Lambda(list(p.params), rewrite_first(p.body, MAP_TO_MAPSEQ))
        np.testing.assert_allclose(run(p, xs), run(p2, xs), rtol=1e-6)

    @given(st.integers(1, 4), st.integers(1, 4))
    def test_split_join(self, n, m):
        xs = np.arange(float(n * m))
        p = square_map_prog()
        p2 = Lambda(list(p.params), rewrite_first(p.body, split_join(n)))
        np.testing.assert_allclose(run(p, xs), run(p2, xs), rtol=1e-6)

    @given(st.integers(1, 4), st.integers(1, 4))
    def test_map_to_wrg_lcl(self, n, m):
        xs = np.arange(float(n * m))
        p = square_map_prog()
        p2 = Lambda(list(p.params), rewrite_first(p.body, map_to_wrg_lcl(n)))
        np.testing.assert_allclose(run(p, xs), run(p2, xs), rtol=1e-6)

    @given(floats)
    def test_reduce_to_reduceseq(self, xs):
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        A = Param("A", ArrayType(Float, N))
        p = Lambda([A], FunCall(Reduce(add, 0.0), A))
        p2 = Lambda(list(p.params),
                    rewrite_first(p.body, REDUCE_TO_REDUCESEQ))
        a = Interp(sizes={"N": len(xs)}).run(p, np.asarray(xs))
        b = Interp(sizes={"N": len(xs)}).run(p2, np.asarray(xs))
        assert a == pytest.approx(b)


class TestEngine:
    def test_rewrite_first_raises_when_no_match(self):
        p = square_map_prog()
        with pytest.raises(RewriteError):
            rewrite_first(p.body, MAP_FUSION)  # single map: nothing to fuse

    def test_rewrite_everywhere_counts(self):
        p = double_map_prog()
        _, count = rewrite_everywhere(p.body, MAP_TO_MAPSEQ)
        assert count == 2

    def test_rewrite_everywhere_zero(self):
        p = square_map_prog()
        _, count = rewrite_everywhere(p.body, MAP_FUSION)
        assert count == 0


class TestLowerSimple:
    def test_outer_map_becomes_glb(self):
        p = lower_simple(square_map_prog())
        assert isinstance(p.body.fun, MapGlb)

    def test_nested_map_becomes_seq(self):
        A = Param("A", ArrayType(Float, N))
        inner_f = lam(Float, lambda x: BinOp("*", x, 2.0))
        win = Param("w", ArrayType(Float, 3))
        outer_f = Lambda([win], FunCall(Reduce(
            lam([Float, Float], lambda a, b: BinOp("+", a, b)), 0.0),
            FunCall(Map(inner_f), win)))
        prog = Lambda([A], FunCall(Map(outer_f), FunCall(Slide(3, 1), A)))
        low = lower_simple(prog)
        assert isinstance(low.body.fun, MapGlb)
        d = dump(low.body)
        assert "MapSeq" in d and "ReduceSeq" in d
        assert "'Map'" not in d and "'Reduce'" not in d

    @given(floats)
    def test_lowering_preserves_semantics(self, xs):
        p = double_map_prog()
        low = lower_simple(p)
        np.testing.assert_allclose(run(p, xs), run(low, xs), rtol=1e-6)

    def test_lowering_preserves_sharing(self):
        """A shared sub-expression must lower to a single shared node."""
        A = Param("A", ArrayType(Float, N))
        x = Param("x", Float)
        shared = BinOp("*", x, x)
        body = BinOp("+", shared, shared)
        prog = Lambda([A], FunCall(Map(Lambda([x], body)), A))
        low = lower_simple(prog)
        inner = low.body.fun.f.body
        assert inner.lhs is inner.rhs  # sharing survived

    def test_already_lowered_stays(self):
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], FunCall(MapGlb(lam(Float, lambda v: v), 0), A))
        low = lower_simple(prog)
        assert isinstance(low.body.fun, MapGlb)


class TestFusionWithPatternFunction:
    def test_fuse_map_over_map_of_reduce(self):
        """Fusing when the inner map's function is a Reduce pattern: the
        synthetic parameter must get the window element type."""
        A = Param("A", ArrayType(Float, N))
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        stencil = FunCall(Map(Reduce(add, 0.0)), FunCall(Slide(3, 1), A))
        prog = Lambda([A], FunCall(
            Map(lam(Float, lambda x: BinOp("*", x, 2.0))), stencil))
        fused = Lambda(list(prog.params),
                       rewrite_first(prog.body, MAP_FUSION))
        xs = np.arange(1.0, 9.0)
        np.testing.assert_allclose(run(fused, xs), run(prog, xs))

    def test_fused_program_analysable(self):
        from repro.lift.analysis import analyse_kernel
        A = Param("A", ArrayType(Float, N))
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        stencil = FunCall(Map(Reduce(add, 0.0)), FunCall(Slide(3, 1), A))
        prog = Lambda([A], FunCall(
            Map(lam(Float, lambda x: BinOp("*", x, 2.0))), stencil))
        fused = Lambda(list(prog.params),
                       rewrite_first(prog.body, MAP_FUSION))
        r = analyse_kernel(lower_simple(fused))
        assert r.loads == 3 and r.stores == 1


class TestUnfusedProducerAccounting:
    def test_intermediate_materialisation_counted(self):
        """A symbolic-length producer map charges one intermediate
        store+load per consumer work item — the cost fusion removes."""
        from repro.lift.analysis import analyse_kernel
        A = Param("A", ArrayType(Float, N))
        doubled = FunCall(Map(lam(Float, lambda x: BinOp("*", x, 2.0))), A)
        prog = Lambda([A], FunCall(
            Map(lam(Float, lambda x: BinOp("+", x, 1.0))), doubled))
        r = analyse_kernel(lower_simple(prog))
        assert ("__intermediate__", "contiguous", 4) in r.stores_detail
        assert ("__intermediate__", "contiguous", 4) in r.loads_detail
        # fused equivalent has strictly less traffic
        fused = Lambda(list(prog.params),
                       rewrite_first(prog.body, MAP_FUSION))
        rf = analyse_kernel(lower_simple(fused))
        assert rf.memory_accesses < r.memory_accesses
