"""Tests for the LIFT type system (repro.lift.types)."""

import pytest

from repro.lift.arith import Cst, Var
from repro.lift.types import (ArrayType, Bool, Double, Float, Int, Long,
                              ScalarType, TupleType, TypeError_, array,
                              check_same, element_type, float_type,
                              scalar_by_name)


class TestScalars:
    def test_widths(self):
        assert Float.nbytes == 4
        assert Double.nbytes == 8
        assert Int.nbytes == 4
        assert Long.nbytes == 8
        assert Bool.nbytes == 1

    def test_c_names(self):
        assert Float.c_name() == "float"
        assert Double.c_name() == "double"
        assert Int.c_name() == "int"

    def test_np_dtypes(self):
        assert Float.np_dtype == "float32"
        assert Double.np_dtype == "float64"
        assert Int.np_dtype == "int32"

    def test_scalar_by_name(self):
        assert scalar_by_name("float") is Float
        assert scalar_by_name("double") is Double

    def test_scalar_by_name_unknown(self):
        with pytest.raises(TypeError_):
            scalar_by_name("half")

    def test_float_type(self):
        assert float_type("single") is Float
        assert float_type("double") is Double
        assert float_type("float32") is Float
        assert float_type("f64") is Double

    def test_float_type_unknown(self):
        with pytest.raises(TypeError_):
            float_type("quad")

    def test_equality(self):
        assert Float == ScalarType("float", 4, "float32")
        assert Float != Double


class TestArrayType:
    def test_size_in_bytes(self):
        t = ArrayType(Double, 10)
        assert t.size_in_bytes().evaluate() == 80

    def test_symbolic_size(self):
        t = ArrayType(Float, Var("N"))
        assert t.size_in_bytes().evaluate({"N": 3}) == 12

    def test_c_name(self):
        assert ArrayType(Float, Var("N")).c_name() == "float[N]"

    def test_rejects_non_type_element(self):
        with pytest.raises(TypeError_):
            ArrayType("float", 10)  # type: ignore[arg-type]

    def test_nested_builder(self):
        t = array(Float, Var("a"), Var("b"), Var("c"))
        assert isinstance(t, ArrayType)
        assert t.shape() == (Var("a"), Var("b"), Var("c"))
        assert t.base_scalar is Float

    def test_nested_size_bytes(self):
        t = array(Int, 2, 3)
        assert t.size_in_bytes().evaluate() == 24

    def test_substitute(self):
        t = ArrayType(Float, Var("N"))
        t2 = t.substitute({"N": 8})
        assert t2.size == Cst(8)

    def test_equality(self):
        assert ArrayType(Float, Var("N")) == ArrayType(Float, Var("N"))
        assert ArrayType(Float, Var("N")) != ArrayType(Float, Var("M"))
        assert ArrayType(Float, 4) != ArrayType(Double, 4)

    def test_hashable(self):
        s = {ArrayType(Float, 4), ArrayType(Float, 4)}
        assert len(s) == 1


class TestTupleType:
    def test_components(self):
        t = TupleType(Float, Int)
        assert t.elems == (Float, Int)

    def test_needs_components(self):
        with pytest.raises(TypeError_):
            TupleType()

    def test_size(self):
        assert TupleType(Float, Double).size_in_bytes().evaluate() == 12

    def test_equality(self):
        assert TupleType(Float, Int) == TupleType(Float, Int)
        assert TupleType(Float, Int) != TupleType(Int, Float)

    def test_rejects_non_types(self):
        with pytest.raises(TypeError_):
            TupleType(Float, "int")  # type: ignore[arg-type]


class TestHelpers:
    def test_check_same_ok(self):
        check_same(ArrayType(Float, 4), ArrayType(Float, 4))

    def test_check_same_raises(self):
        with pytest.raises(TypeError_, match="mismatch"):
            check_same(Float, Double, context="unit test")

    def test_element_type(self):
        assert element_type(ArrayType(Int, 3)) is Int

    def test_element_type_non_array(self):
        with pytest.raises(TypeError_):
            element_type(Float)
