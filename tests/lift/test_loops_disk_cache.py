"""The on-disk compiled-artifact cache for the loops backend's cc tier.

Artifacts are content-addressed by (source, compiler, flags): a second
build of identical source — in this process or any other — is a dlopen,
not a compile.  These tests drive ``_cc_build`` directly with tiny C
sources so they are independent of which kernels the suite compiled.
"""

import ctypes

import pytest

from repro.lift.codegen import loops

CC = loops._cc_path()

pytestmark = pytest.mark.skipif(CC is None, reason="no working C compiler")


@pytest.fixture
def cache_dir(tmp_path):
    """Point the process cache at a fresh directory; restore after."""
    prev = loops.loops_cache_dir()
    loops.set_loops_cache_dir(tmp_path)
    yield tmp_path
    loops.set_loops_cache_dir(prev)


def _source(tag):
    return f"void repro_loop_{tag}(long long n) {{ (void)n; }}\n"


def test_miss_then_hit(cache_dir):
    base = loops.loops_disk_cache_stats()
    lib = loops._cc_build(CC, _source("tcache"), "tcache")
    assert isinstance(lib, ctypes.CDLL)
    after_miss = loops.loops_disk_cache_stats()
    assert after_miss["misses"] == base["misses"] + 1
    assert after_miss["hits"] == base["hits"]
    assert after_miss["entries"] == 1

    lib2 = loops._cc_build(CC, _source("tcache"), "tcache")
    getattr(lib2, "repro_loop_tcache")
    after_hit = loops.loops_disk_cache_stats()
    assert after_hit["hits"] == base["hits"] + 1
    assert after_hit["misses"] == after_miss["misses"]   # no recompile
    assert after_hit["entries"] == 1                     # same artifact


def test_different_source_is_a_new_entry(cache_dir):
    loops._cc_build(CC, _source("one"), "k")
    loops._cc_build(CC, _source("two"), "k")
    stats = loops.loops_disk_cache_stats()
    assert stats["entries"] == 2
    sos = sorted(p.name for p in cache_dir.glob("*.so"))
    assert len(sos) == 2
    assert all(name.startswith("k-") for name in sos)


def test_artifact_names_are_content_addressed(cache_dir):
    loops._cc_build(CC, _source("addr"), "addr")
    (artifact,) = cache_dir.glob("*.so")
    stem, _, keypart = artifact.stem.partition("-")
    assert stem == "addr"
    assert len(keypart) == 16
    assert all(c in "0123456789abcdef" for c in keypart)


def test_corrupt_artifact_falls_back_to_rebuild(cache_dir):
    # plant an unloadable artifact at the content-addressed path this
    # source will hash to (never dlopen'd, so safe to replace in place)
    import hashlib
    source = _source("corrupt")
    key = hashlib.sha1("|".join(
        ("v1", CC, " ".join(loops._CC_FLAGS), source)).encode()).hexdigest()
    planted = cache_dir / f"corrupt-{key[:16]}.so"
    planted.write_bytes(b"not a shared object")
    base = loops.loops_disk_cache_stats()
    lib = loops._cc_build(CC, source, "corrupt")
    getattr(lib, "repro_loop_corrupt")
    stats = loops.loops_disk_cache_stats()
    assert stats["hits"] == base["hits"]                 # rebuilt, not hit
    assert stats["misses"] == base["misses"] + 1


def test_disabled_cache_still_builds(cache_dir):
    loops.set_loops_cache_dir(None)
    stats = loops.loops_disk_cache_stats()
    assert stats["enabled"] is False
    base = (stats["hits"], stats["misses"])
    lib = loops._cc_build(CC, _source("nocache"), "nocache")
    getattr(lib, "repro_loop_nocache")
    stats = loops.loops_disk_cache_stats()
    # a disabled cache never counts and never persists
    assert (stats["hits"], stats["misses"]) == base
    assert list(cache_dir.glob("*.so")) == []


def test_env_off_disables(cache_dir, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_LOOPS_CACHE_DIR", "off")
    saved = dict(loops._disk_cache)
    loops._disk_cache.pop("dir", None)                   # force re-resolve
    try:
        assert loops.loops_cache_dir() is None
        assert loops.loops_disk_cache_stats()["enabled"] is False
    finally:
        loops._disk_cache.clear()
        loops._disk_cache.update(saved)


def test_env_path_relocates(cache_dir, monkeypatch, tmp_path):
    target = tmp_path / "relocated"
    monkeypatch.setenv("REPRO_LOOPS_CACHE_DIR", str(target))
    saved = dict(loops._disk_cache)
    loops._disk_cache.pop("dir", None)
    try:
        assert loops.loops_cache_dir() == str(target)
    finally:
        loops._disk_cache.clear()
        loops._disk_cache.update(saved)


def test_surfaced_in_kernel_cache_stats(cache_dir):
    from repro.gpu.runtime import kernel_cache_stats
    stats = kernel_cache_stats()
    assert "loops_disk" in stats
    disk = stats["loops_disk"]
    assert disk["dir"] == str(cache_dir)
    assert set(disk) >= {"enabled", "hits", "misses", "entries"}
