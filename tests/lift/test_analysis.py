"""Tests for the per-work-item resource analysis (repro.lift.analysis)."""

import pytest

from repro.lift.analysis import Resources, analyse_kernel
from repro.lift.arith import Var
from repro.lift.ast import BinOp, FunCall, Lambda, Param, Select, lam, lit
from repro.lift.patterns import (ArrayAccess, Get, Iota, Map, Pad, Reduce,
                                 Slide, WriteTo, Zip)
from repro.lift.types import ArrayType, Double, Float, Int, TupleType

from repro.acoustics.lift_programs import (fd_mm_boundary, fi_fused_3d,
                                           fi_fused_flat, fi_mm_boundary,
                                           volume_kernel)
from repro.bench.paper_data import PAPER_RESOURCE_COUNTS

N = Var("N")


class TestBasicCounting:
    def test_simple_map(self):
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], FunCall(Map(lam(Float, lambda x:
                                           BinOp("*", x, x))), A))
        r = analyse_kernel(prog)
        assert r.loads == 1
        assert r.stores == 1
        assert r.flops == 1

    def test_zip_loads_counted_at_get(self):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        p = Param("p", TupleType(Float, Float))
        # only component 0 is used: exactly one load
        prog = Lambda([A, B], FunCall(Map(Lambda([p], FunCall(Get(0), p))),
                                      FunCall(Zip(2), A, B)))
        r = analyse_kernel(prog)
        assert r.loads == 1

    def test_shared_subexpression_counted_once(self):
        A = Param("A", ArrayType(Float, N))
        x = Param("x", Float)
        shared = BinOp("*", x, x)
        prog = Lambda([A], FunCall(Map(Lambda([x], BinOp("+", shared,
                                                         shared))), A))
        r = analyse_kernel(prog)
        assert r.flops == 2  # one mul + one add, not two muls

    def test_select_marks_divergent_on_memory(self):
        A = Param("A", ArrayType(Float, N))
        i = Param("i", Int)
        body = Select(BinOp(">", i, lit(0, Int)),
                      FunCall(ArrayAccess(), A, i), lit(0.0, Float))
        prog = Lambda([A], FunCall(Map(Lambda([i], body)),
                                   FunCall(Iota(N))))
        r = analyse_kernel(prog)
        assert r.divergent

    def test_pure_arith_select_not_divergent(self):
        A = Param("A", ArrayType(Float, N))
        x = Param("x", Float)
        body = Select(BinOp(">", x, lit(0.0, Float)), x, BinOp("*", x, -1.0))
        prog = Lambda([A], FunCall(Map(Lambda([x], body)), A))
        assert not analyse_kernel(prog).divergent

    def test_stencil_window_multiplies(self):
        A = Param("A", ArrayType(Float, N))
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        prog = Lambda([A], FunCall(Map(Reduce(add, 0.0)),
                                   FunCall(Slide(5, 1), A)))
        r = analyse_kernel(prog)
        assert r.loads == 5
        assert r.flops == 5


class TestClassification:
    def test_gid_index_is_contiguous(self):
        A = Param("A", ArrayType(Float, N))
        i = Param("i", Int)
        prog = Lambda([A], FunCall(Map(Lambda([i], FunCall(ArrayAccess(),
                                                           A, i))),
                                   FunCall(Iota(N))))
        r = analyse_kernel(prog)
        assert ("A", "contiguous", 4) in r.loads_detail

    def test_loaded_index_is_gathered(self):
        A = Param("A", ArrayType(Float, N))
        idxs = Param("idxs", ArrayType(Int, Var("K")))
        i = Param("i", Int)
        inner = FunCall(ArrayAccess(), A, FunCall(ArrayAccess(), idxs, i))
        prog = Lambda([A, idxs], FunCall(Map(Lambda([i], inner)),
                                         FunCall(Iota(Var("K")))))
        r = analyse_kernel(prog)
        assert ("A", "gathered", 4) in r.loads_detail

    def test_material_table_classified(self):
        r = analyse_kernel(fi_mm_boundary("double").kernel)
        assert ("beta", "table", 8) in r.loads_detail

    def test_affine_gid_stays_contiguous(self):
        """b*K + i with constant b and gid i is a coalesced stream."""
        r = analyse_kernel(fd_mm_boundary("double", 3).kernel)
        assert ("g1", "contiguous", 8) in r.loads_detail
        assert r.loads_detail[("g1", "contiguous", 8)] == 3.0

    def test_store_classification(self):
        r = analyse_kernel(fd_mm_boundary("double", 3).kernel)
        assert ("next", "gathered", 8) in r.stores_detail
        assert ("vel_next", "contiguous", 8) in r.stores_detail


class TestPaperCounts:
    """§VII-B2: FD-MM performs 45 memory accesses and 98 ops per update;
    FI-MM performs 6 accesses for 7 computations.  Our counting convention
    (see module docstring) reproduces these within the expected slack; the
    exact measured values are pinned here and reported in EXPERIMENTS.md.
    """

    def test_fi_mm_counts(self):
        r = analyse_kernel(fi_mm_boundary("double").kernel)
        paper = PAPER_RESOURCE_COUNTS["fi_mm"]
        assert r.memory_accesses == 7          # paper: 6
        assert r.flops == paper["flops"]       # paper: 7 — exact match
        assert abs(r.memory_accesses - paper["memory_accesses"]) <= 1

    def test_fd_mm_counts(self):
        r = analyse_kernel(fd_mm_boundary("double", 3).kernel)
        paper = PAPER_RESOURCE_COUNTS["fd_mm"]
        assert r.memory_accesses == 37         # paper: 45 (within 20 %)
        assert 0.7 <= r.memory_accesses / paper["memory_accesses"] <= 1.1
        total_ops = r.flops + r.int_ops
        assert 0.8 <= total_ops / paper["flops"] <= 1.4

    def test_fd_mm_much_heavier_than_fi_mm(self):
        fi = analyse_kernel(fi_mm_boundary("double").kernel)
        fd = analyse_kernel(fd_mm_boundary("double", 3).kernel)
        assert fd.memory_accesses > 4 * fi.memory_accesses
        assert fd.flops > 5 * fi.flops

    def test_branch_count_scales_fd_mm(self):
        fd3 = analyse_kernel(fd_mm_boundary("double", 3).kernel)
        fd6 = analyse_kernel(fd_mm_boundary("double", 6).kernel)
        assert fd6.memory_accesses > fd3.memory_accesses
        assert fd6.flops > fd3.flops

    def test_volume_kernel_resources(self):
        r = analyse_kernel(volume_kernel("double").kernel)
        assert r.loads_detail[("curr", "contiguous", 8)] == 7.0
        assert r.stores == 1
        assert r.divergent  # the nbr > 0 guard

    def test_precision_changes_widths_not_counts(self):
        rs = analyse_kernel(fi_mm_boundary("single").kernel)
        rd = analyse_kernel(fi_mm_boundary("double").kernel)
        assert rs.memory_accesses == rd.memory_accesses
        assert rs.bytes_moved < rd.bytes_moved

    def test_flat_and_3d_fused_agree(self):
        rf = analyse_kernel(fi_fused_flat("double").kernel)
        r3 = analyse_kernel(fi_fused_3d("double").kernel)
        assert rf.loads == r3.loads
        assert rf.stores == r3.stores


class TestResourcesDataclass:
    def test_scaled(self):
        r = Resources()
        r.load(8, 2, array="a", access_class="contiguous")
        r.flops = 3
        s = r.scaled(2.0)
        assert s.loads == 4 and s.flops == 6
        assert s.loads_detail[("a", "contiguous", 8)] == 4.0

    def test_merge(self):
        a, b = Resources(), Resources()
        a.load(4, 1, array="x")
        b.load(4, 2, array="x")
        b.store(8, 1, array="y")
        a.merge(b)
        assert a.loads == 3 and a.stores == 1

    def test_bytes_moved(self):
        r = Resources()
        r.load(8, 2)
        r.store(4, 1)
        assert r.bytes_moved == 20
