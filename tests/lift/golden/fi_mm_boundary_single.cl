__kernel void fi_mm_boundary(__global int* boundaryIndices, __global int* material, __global int* nbrs, __global float* beta, __global float* next, __global float* prev, float l, int K, int M, int N) {
  for (int gid_0 = get_global_id(0); gid_0 < K; gid_0 += get_global_size(0)) {
    int tmp_0 = boundaryIndices[gid_0];
    int tmp_1 = material[gid_0];
    int tmp_2 = nbrs[tmp_0];
    float tmp_3 = beta[tmp_1];
    float cf_0 = (((0.5f * l) * (6 - tmp_2)) * tmp_3);
    float tmp_4 = next[tmp_0];
    float tmp_5 = prev[tmp_0];
    float eta_0_0 = ((tmp_4 + (cf_0 * tmp_5)) / (1.0f + cf_0));
    next[tmp_0+0] = eta_0_0;
  }
}
