__kernel void fd_mm_boundary(__global int* boundaryIndices, __global int* material, __global int* nbrs, __global double* beta, __global double* BI, __global double* DI, __global double* F, __global double* D, __global double* next, __global double* prev, __global double* g1, __global double* vel_prev, __global double* vel_next, double l, int K, int M, int N) {
  for (int gid_0 = get_global_id(0); gid_0 < K; gid_0 += get_global_size(0)) {
    int tmp_0 = boundaryIndices[gid_0];
    int tmp_1 = material[gid_0];
    int tmp_2 = nbrs[tmp_0];
    double tmp_3 = next[tmp_0];
    double tmp_4 = prev[tmp_0];
    double priv_0[3];
    for (int i_0 = 0; i_0 < 3; i_0++) {
      double tmp_5 = g1[((i_0 * K) + gid_0)];
      priv_0[i_0] = tmp_5;
    }
    double priv_1[3];
    for (int i_1 = 0; i_1 < 3; i_1++) {
      double tmp_6 = vel_prev[((i_1 * K) + gid_0)];
      priv_1[i_1] = tmp_6;
    }
    double cf1_0 = (l * (6 - tmp_2));
    double tmp_7 = beta[tmp_1];
    double cf_0 = ((0.5 * cf1_0) * tmp_7);
    double priv_2[3];
    for (int i_2 = 0; i_2 < 3; i_2++) {
      double tmp_8 = BI[((tmp_1 * 3) + i_2)];
      double tmp_9 = D[((tmp_1 * 3) + i_2)];
      double tmp_10 = priv_1[i_2];
      double tmp_11 = F[((tmp_1 * 3) + i_2)];
      double tmp_12 = priv_0[i_2];
      priv_2[i_2] = (tmp_8 * (((2.0 * tmp_9) * tmp_10) - (tmp_11 * tmp_12)));
    }
    double acc_0 = 0.0;
    double x_0 = priv_2[0];
    acc_0 = (acc_0 + x_0);
    double x_1 = priv_2[1];
    acc_0 = (acc_0 + x_1);
    double x_2 = priv_2[2];
    acc_0 = (acc_0 + x_2);
    double newNext_0 = (((tmp_3 - (cf1_0 * acc_0)) + (cf_0 * tmp_4)) / (1.0 + cf_0));
    next[tmp_0] = newNext_0;
    for (int b_0 = 0; b_0 < 3; b_0++) {
      double tmp_13 = BI[((tmp_1 * 3) + b_0)];
      double tmp_14 = DI[((tmp_1 * 3) + b_0)];
      double tmp_15 = priv_1[b_0];
      double tmp_16 = F[((tmp_1 * 3) + b_0)];
      double tmp_17 = priv_0[b_0];
      double v1val_0 = (tmp_13 * (((newNext_0 - tmp_4) + (tmp_14 * tmp_15)) - ((2.0 * tmp_16) * tmp_17)));
      vel_next[((b_0 * K) + gid_0)] = v1val_0;
      double tmp_18 = priv_0[b_0];
      double tmp_19 = priv_1[b_0];
      g1[((b_0 * K) + gid_0)] = (tmp_18 + (0.5 * (v1val_0 + tmp_19)));
    }
  }
}
