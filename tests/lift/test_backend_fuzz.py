"""Differential fuzzing of the code-generation backends.

Hypothesis builds random scalar expression trees over zipped input
arrays; each generated program must produce identical results through the
reference interpreter and through the generated-and-exec'd NumPy kernel.
A second suite checks structural sanity of the OpenCL text for every LIFT
program shipped in the repository.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lift.arith import Var
from repro.lift.ast import (BinOp, FunCall, Lambda, Param, Select, UnaryOp,
                            lit)
from repro.lift.codegen.numpy_backend import compile_numpy
from repro.lift.codegen.opencl import compile_kernel
from repro.lift.interp import Interp
from repro.lift.patterns import ArrayAccess, Get, Iota, Map, Zip
from repro.lift.types import ArrayType, Double, Int, TupleType

N = Var("N")


@st.composite
def scalar_exprs(draw, leaves, depth=0):
    """A random scalar expression tree over the given leaf expressions."""
    if depth >= 4 or draw(st.booleans()):
        choice = draw(st.integers(0, len(leaves)))
        if choice == len(leaves):
            return lit(draw(st.floats(min_value=-4, max_value=4,
                                      allow_nan=False)), Double)
        return leaves[choice]
    kind = draw(st.integers(0, 2))
    a = draw(scalar_exprs(leaves, depth + 1))
    b = draw(scalar_exprs(leaves, depth + 1))
    if kind == 0:
        op = draw(st.sampled_from(["+", "-", "*", "min", "max"]))
        return BinOp(op, a, b)
    if kind == 1:
        return UnaryOp(draw(st.sampled_from(["neg", "abs"])), a)
    cond = BinOp(draw(st.sampled_from(["<", ">", "<=", ">="])), a, b)
    c = draw(scalar_exprs(leaves, depth + 1))
    return Select(cond, draw(scalar_exprs(leaves, depth + 1)), c)


@st.composite
def map_programs(draw):
    """Lambda([A, B], Map(f) << Zip(A, B)) with a random scalar body."""
    A = Param("A", ArrayType(Double, N))
    B = Param("B", ArrayType(Double, N))
    p = Param("p", TupleType(Double, Double))
    leaves = [FunCall(Get(0), p), FunCall(Get(1), p)]
    body = draw(scalar_exprs(leaves))
    return Lambda([A, B], FunCall(Map(Lambda([p], body)),
                                  FunCall(Zip(2), A, B)))


arrays = st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                  min_size=1, max_size=10)


class TestDifferentialFuzz:
    @given(map_programs(), arrays)
    @settings(max_examples=60, deadline=None)
    def test_interp_equals_numpy_backend(self, prog, xs):
        a = np.asarray(xs)
        b = np.cos(a) * 3.0  # deterministic second input
        ref = Interp(sizes={"N": a.size}).run(prog, a, b)
        ref = np.asarray([float(v) for v in ref])
        nk = compile_numpy(prog, "fuzz")
        out = np.zeros_like(a)
        nk.fn(a, b, N=a.size, out=out)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    @given(map_programs())
    @settings(max_examples=30, deadline=None)
    def test_opencl_text_is_well_formed(self, prog):
        src = compile_kernel(prog, "fuzz").source
        assert src.count("{") == src.count("}")
        assert "__kernel void fuzz" in src
        assert "get_global_id(0)" in src

    @given(arrays, st.data())
    @settings(max_examples=40, deadline=None)
    def test_gather_program_parity(self, xs, data):
        """Map over Iota with data-dependent gathers."""
        a = np.asarray(xs)
        idx = np.asarray(data.draw(st.lists(
            st.integers(0, a.size - 1), min_size=1, max_size=8)))
        A = Param("A", ArrayType(Double, N))
        I = Param("I", ArrayType(Int, Var("K")))
        i = Param("i", Int)
        body = BinOp("*", FunCall(ArrayAccess(), A,
                                  FunCall(ArrayAccess(), I, i)), 2.0)
        prog = Lambda([A, I], FunCall(Map(Lambda([i], body)),
                                      FunCall(Iota(Var("K")))))
        ref = np.asarray(Interp(sizes={"N": a.size, "K": idx.size})
                         .run(prog, a, idx))
        nk = compile_numpy(prog, "gather")
        out = np.zeros(idx.size)
        nk.fn(a, idx, N=a.size, K=idx.size, out=out)
        np.testing.assert_allclose(out, ref, rtol=1e-12)


def _all_repo_programs():
    from repro.acoustics.lift_programs import (fd_mm_boundary, fi_fused_3d,
                                               fi_fused_flat,
                                               fi_mm_boundary,
                                               volume_kernel)
    from repro.geowaves.lift_programs import (e_update_program,
                                              h_update_program)
    return [
        ("fi_fused_flat", fi_fused_flat("double").kernel),
        ("fi_fused_flat_sp", fi_fused_flat("single").kernel),
        ("fi_fused_3d", fi_fused_3d("double").kernel),
        ("volume_kernel", volume_kernel("double").kernel),
        ("fi_mm_boundary", fi_mm_boundary("double").kernel),
        ("fi_mm_boundary_sp", fi_mm_boundary("single").kernel),
        ("fd_mm_boundary", fd_mm_boundary("double", 3).kernel),
        ("fd_mm_boundary_mb6", fd_mm_boundary("double", 6).kernel),
        ("gpr_h_update", h_update_program().kernel),
        ("gpr_e_update", e_update_program().kernel),
    ]


class TestAllRepoProgramsGenerate:
    @pytest.mark.parametrize("name,kernel", _all_repo_programs(),
                             ids=[n for n, _ in _all_repo_programs()])
    def test_opencl_structural_sanity(self, name, kernel):
        src = compile_kernel(kernel, name).source
        assert src.count("{") == src.count("}"), name
        assert "None" not in src
        assert f"__kernel void {name}(" in src
        # every array (__global) parameter appears in the body; scalar size
        # arguments may be unused (Skip lengths generate no code)
        sig = src.split("{")[0]
        body = src[len(sig):]
        for decl in sig.split("(", 1)[1].split(","):
            if "__global" not in decl:
                continue
            pname = decl.replace(")", "").split()[-1].lstrip("*")
            assert pname in body, f"{name}: unused parameter {pname}"

    @pytest.mark.parametrize("name,kernel", _all_repo_programs(),
                             ids=[n for n, _ in _all_repo_programs()])
    def test_numpy_backend_compiles(self, name, kernel):
        nk = compile_numpy(kernel, name.replace("-", "_"))
        compile(nk.source, "<sanity>", "exec")
        assert callable(nk.fn)
