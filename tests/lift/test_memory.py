"""Tests for the memory allocator (repro.lift.memory)."""

import pytest

from repro.lift.arith import Var
from repro.lift.ast import BinOp, FunCall, Lambda, Param, lam, lit
from repro.lift.memory import AllocationError, allocate
from repro.lift.patterns import (ArrayAccess, ArrayCons, Concat, Id, Iota,
                                 Map, Skip, ToGPU, TupleCons, WriteTo, Zip)
from repro.lift.types import ArrayType, Double, Float, Int

from repro.acoustics.lift_programs import (fd_mm_boundary, fi_fused_flat,
                                           fi_mm_boundary, volume_kernel)

N, K, M = Var("N"), Var("K"), Var("M")


class TestFreshOutputs:
    def test_simple_map_allocates(self):
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], FunCall(Map(lam(Float, lambda x: x)), A))
        alloc = allocate(prog)
        assert alloc.allocates_output
        assert len(alloc.outputs) == 1
        out = alloc.outputs[0]
        assert out.scalar is Float
        assert out.count == N
        assert out.aliased_param is None

    def test_nested_output_count(self):
        from repro.lift.types import array
        G = Param("G", array(Double, Var("a"), Var("b"), Var("c")))
        from repro.lift.patterns import Map3D
        prog = Lambda([G], FunCall(Map3D(lam(Double, lambda x: x)), G))
        alloc = allocate(prog)
        count = alloc.outputs[0].count
        assert count.evaluate({"a": 2, "b": 3, "c": 4}) == 24

    def test_size_params_collected(self):
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], FunCall(Map(lam(Float, lambda x: x)), A))
        assert allocate(prog).size_params == ["N"]

    def test_declared_scalar_params_not_duplicated(self):
        A = Param("A", ArrayType(Float, N))
        n_param = Param("N", Int)
        prog = Lambda([A, n_param], FunCall(Map(lam(Float, lambda x: x)), A))
        assert allocate(prog).size_params == []


class TestInPlaceOutputs:
    def test_writeto_aliases(self):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        prog = Lambda([A, B], FunCall(WriteTo(), A, B))
        alloc = allocate(prog)
        assert not alloc.allocates_output
        assert alloc.outputs[0].aliased_param is A
        assert alloc.outputs[0].is_in_place

    def test_writeto_through_transfers(self):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        prog = Lambda([A, B], FunCall(WriteTo(), FunCall(ToGPU(), A), B))
        alloc = allocate(prog)
        assert alloc.outputs[0].aliased_param is A

    def test_fi_mm_kernel_is_in_place(self):
        alloc = allocate(fi_mm_boundary("double").kernel)
        assert not alloc.allocates_output
        assert alloc.outputs[0].aliased_param.name == "next"

    def test_fd_mm_kernel_aliases_three_arrays(self):
        alloc = allocate(fd_mm_boundary("double", 3).kernel)
        assert not alloc.allocates_output
        names = {o.aliased_param.name for o in alloc.outputs}
        assert names == {"next", "g1", "vel_next"}

    def test_volume_kernel_allocates(self):
        alloc = allocate(volume_kernel("single").kernel)
        assert alloc.allocates_output
        assert alloc.outputs[0].scalar is Float
        assert alloc.outputs[0].count == N

    def test_fused_kernel_double_scalar(self):
        alloc = allocate(fi_fused_flat("double").kernel)
        assert alloc.outputs[0].scalar is Double

    def test_tuple_of_element_writes(self):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        w1 = FunCall(WriteTo(), FunCall(ArrayAccess(), A, lit(0, Int)),
                     lit(1.0, Float))
        w2 = FunCall(WriteTo(), FunCall(ArrayAccess(), B, lit(0, Int)),
                     lit(1.0, Float))
        prog = Lambda([A, B], FunCall(TupleCons(2), w1, w2))
        alloc = allocate(prog)
        assert not alloc.allocates_output
        assert {o.aliased_param.name for o in alloc.outputs} == {"A", "B"}

    def test_writeto_unresolvable_target(self):
        A = Param("A", ArrayType(Float, N))
        # target is a computed map result, not a parameter
        computed = FunCall(Map(lam(Float, lambda x: x)), A)
        prog = Lambda([A], FunCall(WriteTo(), computed, A))
        with pytest.raises(AllocationError):
            allocate(prog)
