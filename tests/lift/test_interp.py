"""Tests for the reference interpreter (repro.lift.interp).

The interpreter is the semantic oracle, so it is validated directly
against NumPy formulations of every pattern, with hypothesis generating
array contents and sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lift.arith import Var
from repro.lift.ast import (BinOp, FunCall, Lambda, Param, Select, UnaryOp,
                            lam, lit)
from repro.lift.interp import (Interp, InterpError, SegmentedValue,
                               SkipValue)
from repro.lift.patterns import (ArrayAccess, ArrayAccess3, ArrayCons,
                                 Concat, Get, Id, Iota, Iterate, Join, Map,
                                 Map3D, Pad, Pad3D, Reduce, Skip, Slide,
                                 Slide3D, Split, ToGPU, ToHost, Transpose,
                                 TupleCons, WriteTo, Zip, Zip3D)
from repro.lift.types import ArrayType, Float, Int, TupleType, array

N = Var("N")

floats = st.lists(st.floats(min_value=-100, max_value=100,
                            allow_nan=False, width=32),
                  min_size=1, max_size=12)


def run1(body_fn, xs, elem_t=Float):
    """Helper: run Lambda([A], body_fn(A)) on a 1-D array."""
    A = Param("A", ArrayType(elem_t, N))
    prog = Lambda([A], body_fn(A))
    return Interp(sizes={"N": len(xs)}).run(prog, np.asarray(xs))


class TestScalarOps:
    def test_all_binops(self):
        a, b = lit(7.0, Float), lit(2.0, Float)
        interp = Interp()
        cases = {"+": 9.0, "-": 5.0, "*": 14.0, "/": 3.5,
                 "min": 2.0, "max": 7.0}
        for op, expected in cases.items():
            prog = Lambda([], BinOp(op, a, b))
            # evaluate via a 0-arg run
            assert interp.run(prog) == expected

    def test_comparisons(self):
        interp = Interp()
        assert interp.run(Lambda([], BinOp("<", lit(1, Int), lit(2, Int))))
        assert not interp.run(Lambda([], BinOp(">", lit(1, Int), lit(2, Int))))
        assert interp.run(Lambda([], BinOp("==", lit(2, Int), lit(2, Int))))
        assert interp.run(Lambda([], BinOp("!=", lit(1, Int), lit(2, Int))))
        assert interp.run(Lambda([], BinOp("<=", lit(2, Int), lit(2, Int))))
        assert interp.run(Lambda([], BinOp(">=", lit(2, Int), lit(2, Int))))

    def test_unary(self):
        interp = Interp()
        assert interp.run(Lambda([], UnaryOp("neg", lit(3.0, Float)))) == -3.0
        assert interp.run(Lambda([], UnaryOp("sqrt", lit(9.0, Float)))) == 3.0
        assert interp.run(Lambda([], UnaryOp("abs", lit(-2.0, Float)))) == 2.0
        assert interp.run(Lambda([], UnaryOp("toInt", lit(2.7, Float)))) == 2

    def test_select(self):
        interp = Interp()
        e = Select(BinOp("<", lit(1, Int), lit(2, Int)), lit(10.0, Float),
                   lit(20.0, Float))
        assert interp.run(Lambda([], e)) == 10.0


class TestMapsAndReduce:
    @given(floats)
    def test_map_square(self, xs):
        out = run1(lambda A: FunCall(Map(lam(Float, lambda x: BinOp("*", x, x))), A), xs)
        np.testing.assert_allclose(out, np.asarray(xs) ** 2, rtol=1e-6)

    @given(floats)
    def test_reduce_sum(self, xs):
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        out = run1(lambda A: FunCall(Reduce(add, 0.0), A), xs)
        assert out == pytest.approx(float(np.sum(np.asarray(xs, np.float64))),
                                    rel=1e-9, abs=1e-9)

    @given(floats)
    def test_reduce_max(self, xs):
        mx = lam([Float, Float], lambda a, b: BinOp("max", a, b))
        out = run1(lambda A: FunCall(Reduce(mx, -1e30), A), xs)
        assert out == max(xs)

    def test_map_over_iota(self):
        i = Param("i", Int)
        prog = Lambda([], FunCall(Map(Lambda([i], BinOp("*", i, 3))),
                                  FunCall(Iota(Var("K")))))
        out = Interp(sizes={"K": 5}).run(prog)
        np.testing.assert_array_equal(out, [0, 3, 6, 9, 12])

    def test_iterate(self):
        double = Map(lam(Float, lambda x: BinOp("*", x, 2.0)))
        out = run1(lambda A: FunCall(Iterate(3, double), A), [1.0, 2.0])
        np.testing.assert_allclose(out, [8.0, 16.0])


class TestReorganisation:
    @given(floats)
    def test_zip_get(self, xs):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        p = Param("p", TupleType(Float, Float))
        f = Lambda([p], BinOp("-", FunCall(Get(0), p), FunCall(Get(1), p)))
        prog = Lambda([A, B], FunCall(Map(f), FunCall(Zip(2), A, B)))
        a = np.asarray(xs)
        out = Interp(sizes={"N": len(xs)}).run(prog, a, 2 * a)
        np.testing.assert_allclose(out, -a, rtol=1e-6)

    def test_zip_length_mismatch(self):
        A = Param("A", ArrayType(Float, Var("N")))
        B = Param("B", ArrayType(Float, Var("M")))
        prog = Lambda([A, B], FunCall(Zip(2), A, B))
        with pytest.raises(InterpError):
            Interp(sizes={"N": 2, "M": 3}).run(prog, np.zeros(2), np.zeros(3))

    @given(st.integers(1, 4), st.integers(1, 5))
    def test_split_join_roundtrip(self, n, m):
        xs = np.arange(float(n * m))
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], FunCall(Join(), FunCall(Split(n), A)))
        out = Interp(sizes={"N": n * m}).run(prog, xs)
        np.testing.assert_array_equal(out, xs)

    def test_split_non_divisible(self):
        with pytest.raises(InterpError):
            run1(lambda A: FunCall(Split(3), A), [1.0, 2.0, 3.0, 4.0])

    def test_transpose(self):
        g = Param("G", array(Float, 2, 3))
        prog = Lambda([g], FunCall(Transpose(), g))
        out = Interp().run(prog, np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(out, np.arange(6.0).reshape(2, 3).T)

    @given(floats, st.integers(2, 4))
    def test_slide_windows(self, xs, size):
        if len(xs) < size:
            return
        out = run1(lambda A: FunCall(Slide(size, 1), A), xs)
        expected = np.lib.stride_tricks.sliding_window_view(
            np.asarray(xs), size)
        np.testing.assert_array_equal(np.asarray(out), expected)

    @given(floats, st.integers(0, 3), st.integers(0, 3))
    def test_pad(self, xs, l, r):
        out = run1(lambda A: FunCall(Pad(l, r, 0.0), A), xs)
        expected = np.pad(np.asarray(xs), (l, r))
        np.testing.assert_array_equal(out, expected)

    def test_stencil_composition(self):
        # map(reduce(add, 0)) o slide(3,1) o pad(1,1,0)  ==  3-point sum
        add = lam([Float, Float], lambda a, b: BinOp("+", a, b))
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        out = run1(lambda A: FunCall(Map(Reduce(add, 0.0)),
                                     FunCall(Slide(3, 1),
                                             FunCall(Pad(1, 1, 0.0), A))), xs)
        np.testing.assert_allclose(out, [3, 6, 9, 12, 9])


class Test3D:
    def test_slide3d_window(self):
        g = Param("G", array(Float, 4, 4, 4))
        win = Param("w", array(Float, 3, 3, 3))
        f = Lambda([win], FunCall(ArrayAccess3(), win, lit(1, Int),
                                  lit(1, Int), lit(1, Int)))
        prog = Lambda([g], FunCall(Map3D(f), FunCall(Slide3D(3, 1), g)))
        vol = np.arange(64.0).reshape(4, 4, 4)
        out = Interp().run(prog, vol)
        np.testing.assert_array_equal(out, vol[1:-1, 1:-1, 1:-1])

    def test_pad3d(self):
        g = Param("G", array(Float, 2, 2, 2))
        win = Param("w", array(Float, 3, 3, 3))
        f = Lambda([win], FunCall(ArrayAccess3(), win, lit(0, Int),
                                  lit(0, Int), lit(0, Int)))
        prog = Lambda([g], FunCall(Map3D(f), FunCall(Slide3D(3, 1),
                                                     FunCall(Pad3D(1, 1, 0.0), g))))
        vol = np.ones((2, 2, 2))
        out = Interp().run(prog, vol)
        # window corner (0,0,0) at output (0,0,0) is the padded corner = 0
        assert out[0, 0, 0] == 0.0

    def test_zip3d_map3d(self):
        a = Param("A", array(Float, 2, 2, 2))
        b = Param("B", array(Float, 2, 2, 2))
        p = Param("p", TupleType(Float, Float))
        f = Lambda([p], BinOp("+", FunCall(Get(0), p), FunCall(Get(1), p)))
        prog = Lambda([a, b], FunCall(Map3D(f), FunCall(Zip3D(2), a, b)))
        va = np.arange(8.0).reshape(2, 2, 2)
        out = Interp().run(prog, va, va)
        np.testing.assert_array_equal(out, 2 * va)


class TestInPlacePrimitives:
    def test_skip_value(self):
        out = Interp(sizes={"K": 4}).run(
            Lambda([], FunCall(Skip(Float, Var("K")))))
        assert isinstance(out, SkipValue) and len(out) == 4

    def test_array_cons(self):
        out = Interp().run(Lambda([], FunCall(ArrayCons(3), lit(6.0, Float))))
        assert out == [6.0, 6.0, 6.0]

    def test_concat_plain(self):
        A = Param("A", ArrayType(Float, 2))
        B = Param("B", ArrayType(Float, 3))
        prog = Lambda([A, B], FunCall(Concat(2), A, B))
        out = Interp().run(prog, np.array([1.0, 2.0]), np.array([3.0, 4.0, 5.0]))
        np.testing.assert_array_equal(np.asarray(out), [1, 2, 3, 4, 5])

    def test_concat_with_skips_is_segmented(self):
        prog = Lambda([], FunCall(Concat(3), FunCall(Skip(Float, 2)),
                                  FunCall(ArrayCons(1), lit(9.0, Float)),
                                  FunCall(Skip(Float, 3))))
        out = Interp().run(prog)
        assert isinstance(out, SegmentedValue)
        assert len(out) == 6
        buf = np.zeros(6)
        out.apply_to(buf)
        np.testing.assert_array_equal(buf, [0, 0, 9, 0, 0, 0])

    def test_writeto_whole_array(self):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        prog = Lambda([A, B], FunCall(WriteTo(), A, B))
        a = np.zeros(3)
        b = np.array([1.0, 2.0, 3.0])
        out = Interp(sizes={"N": 3}).run(prog, a, b)
        np.testing.assert_array_equal(a, b)
        assert out is a

    def test_writeto_element(self):
        A = Param("A", ArrayType(Float, N))
        target = FunCall(ArrayAccess(), A, lit(1, Int))
        prog = Lambda([A], FunCall(WriteTo(), target, lit(42.0, Float)))
        a = np.zeros(3)
        Interp(sizes={"N": 3}).run(prog, a)
        np.testing.assert_array_equal(a, [0, 42, 0])

    def test_paper_inplace_idiom(self):
        """Map(idx => WriteTo(input, Concat(Skip(idx), f(x), Skip(...))))."""
        M, K = Var("M"), Var("K")
        inp = Param("input", ArrayType(Float, M))
        idxs = Param("indices", ArrayType(Int, K))
        i = Param("i", Int)
        newv = BinOp("*", FunCall(ArrayAccess(), inp, i), 10.0)
        row = FunCall(Concat(3), FunCall(Skip(Float, i.arith)),
                      FunCall(Map(Id()), FunCall(ArrayCons(1), newv)),
                      FunCall(Skip(Float, M - 1 - i.arith)))
        prog = Lambda([inp, idxs],
                      FunCall(WriteTo(), inp, FunCall(Map(Lambda([i], row)), idxs)))
        buf = np.array([1.0, 2.0, 3.0, 4.0])
        Interp(sizes={"M": 4, "K": 2}).run(prog, buf, np.array([0, 2]))
        np.testing.assert_array_equal(buf, [10, 2, 30, 4])

    def test_writeto_length_mismatch(self):
        A = Param("A", ArrayType(Float, Var("N")))
        B = Param("B", ArrayType(Float, Var("M")))
        prog = Lambda([A, B], FunCall(WriteTo(), A, B))
        with pytest.raises(InterpError):
            Interp(sizes={"N": 3, "M": 2}).run(prog, np.zeros(3), np.zeros(2))

    def test_tuple_of_writes(self):
        A = Param("A", ArrayType(Float, N))
        B = Param("B", ArrayType(Float, N))
        w1 = FunCall(WriteTo(), FunCall(ArrayAccess(), A, lit(0, Int)),
                     lit(1.0, Float))
        w2 = FunCall(WriteTo(), FunCall(ArrayAccess(), B, lit(1, Int)),
                     lit(2.0, Float))
        prog = Lambda([A, B], FunCall(TupleCons(2), w1, w2))
        a, b = np.zeros(2), np.zeros(2)
        Interp(sizes={"N": 2}).run(prog, a, b)
        np.testing.assert_array_equal(a, [1, 0])
        np.testing.assert_array_equal(b, [0, 2])


class TestSharingAndTransfers:
    def test_togpu_tohost_identity(self):
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], FunCall(ToHost(), FunCall(ToGPU(), A)))
        a = np.array([1.0, 2.0])
        out = Interp(sizes={"N": 2}).run(prog, a)
        np.testing.assert_array_equal(out, a)

    def test_dag_sharing_evaluates_once(self):
        """A shared FunCall with a side effect must run exactly once."""
        A = Param("A", ArrayType(Float, N))
        bump = FunCall(WriteTo(), FunCall(ArrayAccess(), A, lit(0, Int)),
                       BinOp("+", FunCall(ArrayAccess(), A, lit(0, Int)),
                             1.0))
        # same node used twice in a tuple
        prog = Lambda([A], FunCall(TupleCons(2), bump, bump))
        a = np.zeros(1)
        Interp(sizes={"N": 1}).run(prog, a)
        assert a[0] == 1.0  # once, not twice

    def test_arity_mismatch(self):
        A = Param("A", ArrayType(Float, N))
        prog = Lambda([A], A)
        with pytest.raises(InterpError):
            Interp().run(prog, np.zeros(1), np.zeros(1))

    def test_unbound_param(self):
        ghost = Param("ghost", Float)
        prog = Lambda([], ghost)
        with pytest.raises(InterpError):
            Interp().run(prog)
