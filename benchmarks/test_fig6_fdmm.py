"""Figure 6 / Table VI: the FD-MM boundary kernel (3 ODE branches)."""

import numpy as np
import pytest
from conftest import SCALE, write_artifact

from repro.acoustics import kernels_numpy as kn
from repro.acoustics.lift_programs import fd_mm_boundary
from repro.bench.report import render_fig6
from repro.lift.codegen.numpy_backend import compile_numpy


def test_fig6_artifact():
    write_artifact("fig6_table6_fdmm.txt", render_fig6(SCALE))


@pytest.fixture(scope="module")
def lift_kernel():
    return compile_numpy(fd_mm_boundary("double", 3).kernel,
                         "fd_mm_boundary")


@pytest.mark.parametrize("which", ["box", "dome"])
def test_bench_fdmm_lift_generated(benchmark, which, box_problem,
                                   dome_problem, lift_kernel):
    p = box_problem if which == "box" else dome_problem
    t = p.topo
    g = p.grid
    tab = p.fd_table
    K = t.num_boundary_points

    def step():
        lift_kernel.fn(t.boundary_indices, t.material, t.nbrs, tab.beta,
                       tab.BI.reshape(-1), tab.DI.reshape(-1),
                       tab.F.reshape(-1), tab.D.reshape(-1),
                       p.nxt, p.prev, p.g1, p.v2, p.v1, g.courant, K,
                       N=p.N, M=tab.num_materials)
        return p.nxt

    benchmark(step)


@pytest.mark.parametrize("which", ["box", "dome"])
def test_bench_fdmm_handwritten(benchmark, which, box_problem,
                                dome_problem):
    p = box_problem if which == "box" else dome_problem
    t = p.topo
    g = p.grid
    tab = p.fd_table

    def step():
        kn.fd_mm_boundary(p.nxt[:p.N], p.prev[:p.N], t.boundary_indices,
                          t.nbrs, t.material, tab.beta, tab.BI, tab.DI,
                          tab.F, tab.D, p.g1, p.v1, p.v2, g.courant)
        return p.nxt

    benchmark(step)


def test_generated_matches_handwritten(box_problem, lift_kernel):
    p = box_problem
    t = p.topo
    g = p.grid
    tab = p.fd_table
    K = t.num_boundary_points
    a = p.nxt.copy()
    g1a, v1a, v2a = p.g1.copy(), p.v1.copy(), p.v2.copy()
    lift_kernel.fn(t.boundary_indices, t.material, t.nbrs, tab.beta,
                   tab.BI.reshape(-1), tab.DI.reshape(-1),
                   tab.F.reshape(-1), tab.D.reshape(-1),
                   a, p.prev, g1a, v2a, v1a, g.courant, K,
                   N=p.N, M=tab.num_materials)
    b = p.nxt[:p.N].copy()
    g1b, v1b, v2b = p.g1.copy(), p.v1.copy(), p.v2.copy()
    kn.fd_mm_boundary(b, p.prev[:p.N], t.boundary_indices, t.nbrs,
                      t.material, tab.beta, tab.BI, tab.DI, tab.F, tab.D,
                      g1b, v1b, v2b, g.courant)
    np.testing.assert_allclose(a[:p.N], b, atol=1e-12)
    np.testing.assert_allclose(g1a, g1b, atol=1e-12)
    np.testing.assert_allclose(v1a, v1b, atol=1e-12)
