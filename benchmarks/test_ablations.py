"""Ablation benches for the design choices called out in DESIGN.md §5.

1. two-kernel split vs fused conditional kernel (paper §II-C);
2. boundary-index gather/scatter vs full-volume masked boundary update;
3. coalescing sensitivity of the boundary kernel (contiguity sweep);
4. constant-memory coefficient tables vs kernel arguments (§VII-B1);
5. workgroup-size autotuning vs a fixed workgroup.
"""

import io

import numpy as np
import pytest
from conftest import SCALE, write_artifact

from repro.acoustics import kernels_numpy as kn
from repro.bench.harness import kernel_resources, modelled_time
from repro.bench.rooms import room_bundle
from repro.gpu.autotune import autotune_workgroup
from repro.gpu.costmodel import (HANDWRITTEN_TRAITS, LIFT_TRAITS,
                                 kernel_time, sector_bytes_per_item)
from repro.gpu.device import NVIDIA_TITAN_BLACK


# --- 1. fused vs two-kernel ----------------------------------------------------------

class TestFusedVsTwoKernel:
    def test_model_prefers_split_for_boundary_heavy_rooms(self):
        """The split removes divergence from the hot volume loop; the
        boundary pass touches only K << N points.  Modelled total time of
        the split must not exceed the fused kernel's by more than the
        boundary pass itself."""
        b = room_bundle("302", "box", SCALE)
        fused = modelled_time("fi_fused", "double", "OpenCL",
                              NVIDIA_TITAN_BLACK, b)
        vol = modelled_time("volume", "double", "OpenCL",
                            NVIDIA_TITAN_BLACK, b)
        bnd = modelled_time("fi_mm", "double", "OpenCL",
                            NVIDIA_TITAN_BLACK, b)
        split_total = vol.time_ms + bnd.time_ms
        assert split_total < fused.time_ms * 1.5
        art = io.StringIO()
        print("ablation 1 — fused vs two-kernel (TitanBlack, double, "
              f"box-302/{SCALE}):", file=art)
        print(f"  fused:      {fused.time_ms:8.4f} ms", file=art)
        print(f"  volume:     {vol.time_ms:8.4f} ms", file=art)
        print(f"  boundary:   {bnd.time_ms:8.4f} ms", file=art)
        print(f"  split sum:  {split_total:8.4f} ms", file=art)
        write_artifact("ablation1_fused_vs_split.txt", art.getvalue())

    def test_bench_fused(self, benchmark, box_problem):
        p = box_problem
        benchmark(kn.fi_fused_step, p.prev[:p.N], p.curr[:p.N],
                  p.nxt[:p.N], p.topo.nbrs, p.grid.shape, p.grid.courant,
                  0.3)

    def test_bench_two_kernel(self, benchmark, box_problem):
        p = box_problem

        def step():
            kn.volume_step(p.prev[:p.N], p.curr[:p.N], p.nxt[:p.N],
                           p.topo.nbrs, p.grid.shape, p.grid.courant)
            kn.fi_boundary(p.nxt[:p.N], p.prev[:p.N],
                           p.topo.boundary_indices, p.topo.nbrs,
                           p.grid.courant, 0.3)

        benchmark(step)


# --- 2. gather/scatter vs masked full-volume update -------------------------------------

def _masked_boundary_update(nxt, prev, nbrs, beta_arr, material_full, lam):
    """The ablation alternative: update *every* grid point, masking
    non-boundary points — no boundaryIndices structure needed, but the
    kernel touches N points instead of K."""
    is_boundary = (nbrs >= 1) & (nbrs <= 5)
    cf = 0.5 * lam * (6 - nbrs) * beta_arr[material_full]
    upd = (nxt + cf * prev) / (1.0 + cf)
    np.copyto(nxt, np.where(is_boundary, upd, nxt))
    return nxt


class TestGatherVsMasked:
    def test_equivalent_results(self, box_problem):
        p = box_problem
        t = p.topo
        material_full = np.zeros(p.N, dtype=np.int32)
        material_full[t.boundary_indices] = t.material
        a = p.nxt[:p.N].copy()
        kn.fi_mm_boundary(a, p.prev[:p.N], t.boundary_indices, t.nbrs,
                          t.material, p.fi_table.beta, p.grid.courant)
        b = p.nxt[:p.N].copy()
        _masked_boundary_update(b, p.prev[:p.N], t.nbrs, p.fi_table.beta,
                                material_full, p.grid.courant)
        np.testing.assert_allclose(a, b, atol=1e-13)

    def test_bench_gather(self, benchmark, box_problem):
        p = box_problem
        t = p.topo
        benchmark(kn.fi_mm_boundary, p.nxt[:p.N], p.prev[:p.N],
                  t.boundary_indices, t.nbrs, t.material, p.fi_table.beta,
                  p.grid.courant)

    def test_bench_masked(self, benchmark, box_problem):
        p = box_problem
        t = p.topo
        material_full = np.zeros(p.N, dtype=np.int32)
        material_full[t.boundary_indices] = t.material
        benchmark(_masked_boundary_update, p.nxt[:p.N], p.prev[:p.N],
                  t.nbrs, p.fi_table.beta, material_full, p.grid.courant)


# --- 3. coalescing sensitivity ------------------------------------------------------------

class TestCoalescingSensitivity:
    def test_throughput_degrades_with_shuffling(self):
        """Randomising an increasing fraction of the boundary indices must
        monotonically slow the modelled boundary kernel — the mechanism
        behind box > dome > (uniform box) in the paper."""
        b = room_bundle("302", "box", SCALE)
        res = kernel_resources("fi_mm", "double")
        rng = np.random.default_rng(0)
        times = []
        art = io.StringIO()
        print("ablation 3 — coalescing sensitivity "
              f"(box-302/{SCALE}, TitanBlack, double):", file=art)
        for frac in (0.0, 0.25, 0.5, 1.0):
            idx = b.boundary_indices.copy().astype(np.int64)
            n_shuffle = int(frac * idx.size)
            if n_shuffle:
                take = rng.choice(idx.size, n_shuffle, replace=False)
                idx[take] = rng.choice(b.num_points, n_shuffle,
                                       replace=False)
            t = kernel_time(res, idx.size, NVIDIA_TITAN_BLACK, "double",
                            LIFT_TRAITS, np.sort(idx))
            times.append(t.time_ms)
            sb = sector_bytes_per_item(np.sort(idx), 8, 32)
            print(f"  shuffled {frac:4.0%}: {t.time_ms:8.4f} ms "
                  f"({sb:5.1f} B/gather)", file=art)
        write_artifact("ablation3_coalescing.txt", art.getvalue())
        assert times == sorted(times)
        assert times[-1] > times[0]


# --- 4. constant tables vs kernel arguments ------------------------------------------------

class TestConstantTableAblation:
    def test_nvidia_double_gap(self):
        b = room_bundle("302", "box", SCALE)
        lift = modelled_time("fi_mm", "double", "LIFT",
                             NVIDIA_TITAN_BLACK, b)
        hand = modelled_time("fi_mm", "double", "OpenCL",
                             NVIDIA_TITAN_BLACK, b)
        assert lift.time_ms > hand.time_ms
        write_artifact("ablation4_constant_table.txt", (
            "ablation 4 — coefficient table placement "
            f"(TitanBlack, double, box-302/{SCALE}):\n"
            f"  constant memory (handwritten): {hand.time_ms:.4f} ms\n"
            f"  kernel argument (LIFT):        {lift.time_ms:.4f} ms\n"
            f"  slowdown: {lift.time_ms / hand.time_ms:.2f}x "
            "(the paper's §VII-B1 discrepancy)\n"))


# --- 5. autotuning -------------------------------------------------------------------------

class TestAutotuneAblation:
    def test_autotuned_beats_untuned_extremes(self):
        b = room_bundle("302", "box", SCALE)
        res = kernel_resources("fd_mm", "double")
        best = autotune_workgroup(res, b.num_boundary_points,
                                  NVIDIA_TITAN_BLACK, "double",
                                  LIFT_TRAITS, b.boundary_indices)
        worst = max(
            kernel_time(res, b.num_boundary_points, NVIDIA_TITAN_BLACK,
                        "double", LIFT_TRAITS, b.boundary_indices,
                        workgroup=wg).time_ms
            for wg in (32, 1024))
        assert best.time_ms < worst
        write_artifact("ablation5_autotune.txt", (
            "ablation 5 — workgroup autotuning "
            f"(FD-MM double, box-302/{SCALE}, TitanBlack):\n"
            f"  autotuned (wg={best.workgroup}): {best.time_ms:.4f} ms\n"
            f"  worst fixed workgroup:           {worst:.4f} ms\n"))
