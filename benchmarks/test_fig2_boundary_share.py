"""Figure 2: boundary handling share of total computation time.

Regenerates the paper's bar chart from the modelled two-kernel times and
benchmarks a full simulation step (volume + boundary) of both schemes to
measure the share on the real NumPy backend too.
"""

import time

import numpy as np
import pytest
from conftest import SCALE, write_artifact

from repro.acoustics import kernels_numpy as kn
from repro.bench.report import render_fig2


def test_fig2_artifact():
    write_artifact("fig2_boundary_share.txt", render_fig2(SCALE))


def _step(p, scheme):
    g = p.grid
    t = p.topo
    kn.volume_step(p.prev[:p.N], p.curr[:p.N], p.nxt[:p.N], t.nbrs,
                   g.shape, g.courant)
    if scheme == "fi_mm":
        kn.fi_mm_boundary(p.nxt[:p.N], p.prev[:p.N], t.boundary_indices,
                          t.nbrs, t.material, p.fi_table.beta, g.courant)
    else:
        kn.fd_mm_boundary(p.nxt[:p.N], p.prev[:p.N], t.boundary_indices,
                          t.nbrs, t.material, p.fd_table.beta,
                          p.fd_table.BI, p.fd_table.DI, p.fd_table.F,
                          p.fd_table.D, p.g1, p.v1, p.v2, g.courant)


@pytest.mark.parametrize("scheme", ["fi_mm", "fd_mm"])
def test_bench_two_kernel_step(benchmark, scheme, box_problem):
    benchmark(_step, box_problem, scheme)


def test_measured_share_fd_exceeds_fi(box_problem):
    """On the real backend too, FD-MM boundary handling consumes a larger
    share of the step than FI-MM (the paper's §II-F motivation)."""
    p = box_problem
    g = p.grid
    t = p.topo

    def timed(fn, reps=5):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_vol = timed(lambda: kn.volume_step(
        p.prev[:p.N], p.curr[:p.N], p.nxt[:p.N], t.nbrs, g.shape,
        g.courant))
    t_fi = timed(lambda: kn.fi_mm_boundary(
        p.nxt[:p.N], p.prev[:p.N], t.boundary_indices, t.nbrs, t.material,
        p.fi_table.beta, g.courant))
    t_fd = timed(lambda: kn.fd_mm_boundary(
        p.nxt[:p.N], p.prev[:p.N], t.boundary_indices, t.nbrs, t.material,
        p.fd_table.beta, p.fd_table.BI, p.fd_table.DI, p.fd_table.F,
        p.fd_table.D, p.g1, p.v1, p.v2, g.courant))
    share_fi = t_fi / (t_vol + t_fi)
    share_fd = t_fd / (t_vol + t_fd)
    print(f"\nmeasured boundary share: FI-MM {share_fi:.1%}, "
          f"FD-MM {share_fd:.1%}")
    assert share_fd > share_fi
