"""Regenerates paper Table II (room sizes / boundary points) and
benchmarks the topology-construction substrate."""

from conftest import SCALE, write_artifact

from repro.acoustics.geometry import Room, shape_by_name
from repro.acoustics.grid import Grid3D
from repro.acoustics.topology import build_topology
from repro.bench.report import render_table2, render_table3
from repro.bench.rooms import scaled_dims


def test_table2_artifact():
    write_artifact("table2.txt", render_table2(SCALE))


def test_table3_artifact():
    write_artifact("table3.txt", render_table3())


def test_bench_voxelise_box(benchmark):
    nx, ny, nz = scaled_dims("302", SCALE)
    room = Room(Grid3D(nx, ny, nz), shape_by_name("box"))
    topo = benchmark(build_topology, room, 4)
    assert topo.num_boundary_points > 0


def test_bench_voxelise_dome(benchmark):
    nx, ny, nz = scaled_dims("302", SCALE)
    room = Room(Grid3D(nx, ny, nz), shape_by_name("dome"))
    topo = benchmark(build_topology, room, 4)
    assert topo.num_boundary_points > 0
