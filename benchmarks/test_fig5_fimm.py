"""Figure 5 / Table V: the FI-MM boundary kernel (box & dome)."""

import numpy as np
import pytest
from conftest import SCALE, write_artifact

from repro.acoustics import kernels_numpy as kn
from repro.acoustics.lift_programs import fi_mm_boundary
from repro.bench.report import render_fig5
from repro.lift.codegen.numpy_backend import compile_numpy


def test_fig5_artifact():
    write_artifact("fig5_table5_fimm.txt", render_fig5(SCALE))


@pytest.fixture(scope="module")
def lift_kernel():
    return compile_numpy(fi_mm_boundary("double").kernel, "fi_mm_boundary")


@pytest.mark.parametrize("which", ["box", "dome"])
def test_bench_fimm_lift_generated(benchmark, which, box_problem,
                                   dome_problem, lift_kernel):
    p = box_problem if which == "box" else dome_problem
    t = p.topo
    g = p.grid

    def step():
        lift_kernel.fn(t.boundary_indices, t.material, t.nbrs,
                       p.fi_table.beta, p.nxt, p.prev, g.courant,
                       N=p.N, K=t.num_boundary_points,
                       M=p.fi_table.num_materials)
        return p.nxt

    benchmark(step)


@pytest.mark.parametrize("which", ["box", "dome"])
def test_bench_fimm_handwritten(benchmark, which, box_problem,
                                dome_problem):
    p = box_problem if which == "box" else dome_problem
    t = p.topo
    g = p.grid

    def step():
        kn.fi_mm_boundary(p.nxt[:p.N], p.prev[:p.N], t.boundary_indices,
                          t.nbrs, t.material, p.fi_table.beta, g.courant)
        return p.nxt

    benchmark(step)


def test_generated_matches_handwritten(box_problem, lift_kernel):
    p = box_problem
    t = p.topo
    g = p.grid
    a = p.nxt.copy()
    lift_kernel.fn(t.boundary_indices, t.material, t.nbrs, p.fi_table.beta,
                   a, p.prev, g.courant, N=p.N, K=t.num_boundary_points,
                   M=p.fi_table.num_materials)
    b = p.nxt[:p.N].copy()
    kn.fi_mm_boundary(b, p.prev[:p.N], t.boundary_indices, t.nbrs,
                      t.material, p.fi_table.beta, g.courant)
    np.testing.assert_allclose(a[:p.N], b, atol=1e-13)
