"""Shared fixtures for the benchmark suite.

Environment:

* ``REPRO_BENCH_SCALE`` — divide the paper's room dimensions (default 4:
  quick runs; set to 1 to regenerate the tables at full paper scale, as
  EXPERIMENTS.md does — allow a few minutes for voxelisation).

Each benchmark module both (a) measures the *real* execution speed of the
generated NumPy kernels with pytest-benchmark and (b) regenerates its
paper artefact via the virtual-GPU model, writing the comparison table to
``benchmarks/out/`` and echoing it to stdout.
"""

import os
import pathlib

import numpy as np
import pytest

from repro.acoustics.materials import (MaterialTable, default_fd_materials,
                                       default_fi_materials)
from repro.bench.rooms import room_bundle, room_topology

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "4"))

OUT_DIR = pathlib.Path(__file__).parent / "out"
OUT_DIR.mkdir(exist_ok=True)


def write_artifact(name: str, text: str) -> None:
    """Persist a regenerated table and echo it (survives pytest capture)."""
    path = OUT_DIR / name
    path.write_text(text)
    print(f"\n[artifact {path}]\n{text}")


@pytest.fixture(scope="session")
def scale() -> int:
    return SCALE


class BenchProblem:
    """A room + randomised states + material tables, ready for kernels."""

    def __init__(self, size: str, shape: str, scale: int, seed: int = 0):
        self.bundle = room_bundle(size, shape, scale)
        self.topo = room_topology(size, shape, scale)
        g = self.bundle.grid
        self.grid = g
        rng = np.random.default_rng(seed)
        N = g.num_points
        self.N = N
        self.guard = g.nx * g.ny
        ins = self.topo.inside.reshape(-1)
        self.prev = np.zeros(N + self.guard)
        self.curr = np.zeros(N + self.guard)
        self.prev[:N][ins] = rng.standard_normal(int(ins.sum()))
        self.curr[:N][ins] = rng.standard_normal(int(ins.sum()))
        self.nxt = np.zeros(N + self.guard)
        self.nbrs_guarded = np.concatenate(
            [self.topo.nbrs, np.zeros(self.guard, np.int32)])
        self.fi_table = MaterialTable.from_fi(default_fi_materials(4))
        self.fd_table = MaterialTable.from_fd(default_fd_materials(4), 3)
        K = self.topo.num_boundary_points
        self.g1 = rng.standard_normal(3 * K)
        self.v1 = np.zeros(3 * K)
        self.v2 = rng.standard_normal(3 * K)

    @property
    def sizes(self):
        return dict(N=self.N, NP=self.N + self.guard,
                    K=self.topo.num_boundary_points,
                    M=self.fi_table.num_materials)


@pytest.fixture(scope="session")
def box_problem() -> BenchProblem:
    return BenchProblem("302", "box", SCALE)


@pytest.fixture(scope="session")
def dome_problem() -> BenchProblem:
    return BenchProblem("302", "dome", SCALE)
