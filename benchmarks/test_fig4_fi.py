"""Figure 4 / Table IV: the naive frequency-independent (FI) kernel.

Regenerates the paper's device x size x impl x precision matrix through
the virtual-GPU model, and benchmarks the *real* execution speed of the
LIFT-generated NumPy kernel against the hand-written NumPy baseline.
"""

import numpy as np
import pytest
from conftest import SCALE, write_artifact

from repro.acoustics import kernels_numpy as kn
from repro.acoustics.lift_programs import fi_fused_flat
from repro.bench.report import render_fig4
from repro.lift.codegen.numpy_backend import compile_numpy


def test_fig4_artifact():
    write_artifact("fig4_table4_fi.txt", render_fig4(SCALE))


@pytest.fixture(scope="module")
def lift_kernel():
    return compile_numpy(fi_fused_flat("double").kernel, "fi_fused_flat")


def test_bench_fi_lift_generated(benchmark, box_problem, lift_kernel):
    p = box_problem
    g = p.grid

    def step():
        lift_kernel.fn(p.prev, p.curr, p.nbrs_guarded, g.courant, 0.3,
                       g.nx, g.nx * g.ny, N=p.N, NP=p.N + p.guard,
                       out=p.nxt)
        return p.nxt

    out = benchmark(step)
    assert np.isfinite(out[:p.N]).all()


def test_bench_fi_handwritten(benchmark, box_problem):
    p = box_problem
    g = p.grid

    def step():
        kn.fi_fused_step(p.prev[:p.N], p.curr[:p.N], p.nxt[:p.N],
                         p.topo.nbrs, g.shape, g.courant, 0.3)
        return p.nxt

    out = benchmark(step)
    assert np.isfinite(out[:p.N]).all()


def test_generated_matches_handwritten(box_problem, lift_kernel):
    """The two benchmarked kernels compute the same thing."""
    p = box_problem
    g = p.grid
    a = np.zeros(p.N + p.guard)
    lift_kernel.fn(p.prev, p.curr, p.nbrs_guarded, g.courant, 0.3,
                   g.nx, g.nx * g.ny, N=p.N, NP=p.N + p.guard, out=a)
    b = np.zeros(p.N)
    kn.fi_fused_step(p.prev[:p.N], p.curr[:p.N], b, p.topo.nbrs, g.shape,
                     g.courant, 0.3)
    np.testing.assert_allclose(a[:p.N], b, atol=1e-13)
